"""Lowering: bound logical plan + pass decisions -> physical plan.

Stage 3 of the staged pipeline (logical plan -> strategy passes ->
**lowering** -> kernel program). Lowering is purely structural — every
cost-guided choice was already made by :func:`repro.plan.passes.run_passes`
and arrives here as a :class:`~repro.plan.passes.Decisions` record; this
module only maps tree shapes onto the physical operator vocabulary:

* each probe spine becomes one :class:`~repro.plan.physical.Pipeline`,
  build pipelines emitted depth-first so every state a pipeline consumes
  was produced by an earlier one;
* Filters become :class:`FilterStage` ops in the strategy's access style
  (branching for datacentric/interpreter, prepass for hybrid/swole);
* Joins become build-op/probe-op pairs according to the join mode the
  passes chose (hash vs positional bitmap, groupjoin vs plain semijoin,
  index join when columns are carried);
* the root aggregation becomes :class:`ScalarAgg`/:class:`GroupAgg` in
  the decided agg mode — or, for an eager-aggregation rewrite, the whole
  plan collapses into one :class:`EagerAggregate` op.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import PlanError
from ..plan import passes as PS
from ..plan.expressions import And, Expr
from ..plan.logical import JoinSpec, Query
from ..plan.ops import (
    Filter,
    GroupByAgg,
    Join,
    LogicalPlan,
    PlanNode,
    Project,
    Scan,
    base_table,
    is_groupjoin,
    spine,
    spine_joins,
)
from ..plan.physical import (
    BRANCH,
    VECTOR,
    BitmapBuild,
    BitmapSemiProbe,
    ColumnMaterialize,
    EagerAggregate,
    FilterStage,
    GroupAgg,
    GroupBuild,
    GroupJoinAgg,
    HashSemiProbe,
    IndexGather,
    PhysicalOp,
    PhysicalPlan,
    Pipeline,
    ScalarAgg,
    SemiHashBuild,
)
from ..core.planner import EAGER
from ..storage.database import Database


def _access(strategy: str) -> str:
    return BRANCH if strategy in ("interpreter", "datacentric") else VECTOR


def _filter_mode(strategy: str) -> str:
    return "branch" if strategy in ("interpreter", "datacentric") else "prepass"


def _combine(conjs: List[Expr]) -> Optional[Expr]:
    if not conjs:
        return None
    if len(conjs) == 1:
        return conjs[0]
    return And(conjs)


def _spine_predicate(node: PlanNode) -> Optional[Expr]:
    """The AND of all Filter predicates on a spine (legacy-Query form)."""
    preds: List[Expr] = []
    for step in spine(node):
        if isinstance(step, Filter):
            preds.extend(step.conjuncts())
    return _combine(preds)


def _legacy_groupjoin_query(plan: LogicalPlan) -> Query:
    """Reverse-convert an eager-eligible groupjoin tree to a Query.

    The eager pass only fires when the tree has the single-join shape
    (build side is Filter*(Scan)), so the conversion is total there.
    """
    root = plan.root
    assert isinstance(root, GroupByAgg)
    joins = spine_joins(root.child)
    target = joins[-1]
    if len(joins) != 1:
        raise PlanError("eager aggregation needs a single-join plan")
    return Query(
        table=base_table(root.child),
        aggregates=root.aggregates,
        predicate=_spine_predicate(root.child),
        group_by=target.fk_column,
        join=JoinSpec(
            build_table=base_table(target.build),
            fk_column=target.fk_column,
            pk_column=target.pk_column,
            build_predicate=_spine_predicate(target.build),
        ),
        name=plan.name,
    )


def lower_plan(
    plan: LogicalPlan,
    decisions: PS.Decisions,
    db: Database,
    strategy: str,
) -> PhysicalPlan:
    """Lower a bound logical plan into a :class:`PhysicalPlan`."""
    root = plan.root
    if not isinstance(root, GroupByAgg):
        raise PlanError("physical lowering expects a GroupByAgg root")
    access = _access(strategy)
    filter_mode = _filter_mode(strategy)
    interpreted = strategy == "interpreter"

    if decisions.groupjoin_mode == EAGER:
        query = _legacy_groupjoin_query(plan)
        table = base_table(root.child)
        return PhysicalPlan(
            strategy=strategy,
            pipelines=(
                Pipeline(
                    label=f"eager aggregate {table}",
                    table=table,
                    ops=(EagerAggregate(query),),
                ),
            ),
            interpreted=interpreted,
        )

    gj_target = (
        spine_joins(root.child)[-1] if is_groupjoin(root) else None
    )
    pipelines: List[Pipeline] = []

    def lower_build(join: Join) -> str:
        """Lower a join's build side into its own pipeline(s)."""
        state = base_table(join.build)
        ops = lower_steps(join.build)
        mode = decisions.join_modes.get(join, PS.HASH_JOIN)
        if join is gj_target:
            ops.append(
                GroupBuild(
                    state, join.pk_column, len(root.aggregates), access
                )
            )
            label = f"build {state}"
        elif mode in (PS.BITMAP_MASK, PS.BITMAP_OFFSETS):
            flavour = "mask" if mode == PS.BITMAP_MASK else "offsets"
            ops.append(BitmapBuild(state, flavour))
            label = f"bitmap build {state}"
        elif join.carry:
            # Index join: the build pipeline only materializes the
            # carried columns (full length); nothing to hash.
            label = f"scan {state}"
        else:
            ops.append(SemiHashBuild(state, join.pk_column, access))
            label = f"build {state}"
        pipelines.append(Pipeline(label=label, table=state, ops=tuple(ops)))
        return state

    def lower_steps(node: PlanNode) -> List[PhysicalOp]:
        """Ops for one spine, excluding the terminal aggregation."""
        ops: List[PhysicalOp] = []
        table = base_table(node)
        for step in spine(node):
            if isinstance(step, Scan):
                continue
            if isinstance(step, Filter):
                ops.append(FilterStage(step.conjuncts(), filter_mode))
            elif isinstance(step, Project):
                for name, expr in step.outputs:
                    lut = _lut_entries(db, table, expr)
                    ops.append(
                        ColumnMaterialize(table, name, expr, lut)
                    )
            elif isinstance(step, Join):
                state = lower_build(step)
                mode = decisions.join_modes.get(step, PS.HASH_JOIN)
                if step is gj_target:
                    ops.append(
                        GroupJoinAgg(
                            state,
                            step.fk_column,
                            root.aggregates,
                            access,
                        )
                    )
                elif step.carry:
                    ops.append(
                        IndexGather(
                            state, step.fk_column, step.carry, access
                        )
                    )
                elif mode in (PS.BITMAP_MASK, PS.BITMAP_OFFSETS):
                    ops.append(BitmapSemiProbe(state, step.fk_column))
                else:
                    ops.append(
                        HashSemiProbe(state, step.fk_column, access)
                    )
            elif isinstance(step, GroupByAgg):
                continue  # the caller appends the terminal op
            else:
                raise PlanError(f"cannot lower plan node {step!r}")
        return ops

    probe_table = base_table(root.child)
    ops = lower_steps(root.child)
    if gj_target is None:
        if root.key is None:
            ops.append(ScalarAgg(root.aggregates, decisions.agg_mode))
        else:
            ops.append(
                GroupAgg(
                    key=root.key,
                    key_name=root.key_name,
                    aggregates=root.aggregates,
                    mode=decisions.agg_mode,
                    expected_groups=decisions.group_cardinality,
                )
            )
    joined = bool(spine_joins(root.child))
    label = f"{'probe' if joined else 'scan'} {probe_table}"
    merged = (
        decisions.merged_columns
        if decisions.agg_mode in (PS.VALUE_MASK, PS.KEY_MASK)
        else ()
    )
    pipelines.append(
        Pipeline(
            label=label, table=probe_table, ops=tuple(ops), merged=merged
        )
    )
    return PhysicalPlan(
        strategy=strategy,
        pipelines=tuple(pipelines),
        interpreted=interpreted,
    )


def _lut_entries(db: Database, table: str, expr: Expr) -> int:
    """Dictionary size when a materialized expr probes a dict column."""
    for name in sorted(expr.columns()):
        dictionary = db.table(table).column(name).dictionary
        if dictionary is not None:
            return len(dictionary)
    return 0


def parallelizable(plan: PhysicalPlan) -> bool:
    """Whether the plan is a single partitionable scan.

    Morsel parallelism currently covers single-pipeline plans whose ops
    are all row-range splittable (filters and terminal aggregations);
    multi-pipeline plans would need shared build state threaded through
    the executor's setup hook. Interpreted plans stay serial, matching
    the Volcano baseline.
    """
    if plan.interpreted or len(plan.pipelines) != 1:
        return False
    return all(
        isinstance(op, (FilterStage, ScalarAgg, GroupAgg))
        for op in plan.pipelines[0].ops
    )


__all__ = ["lower_plan", "parallelizable"]
