"""Lowering: bound logical plan + pass decisions -> physical plan.

Stage 3 of the staged pipeline (logical plan -> strategy passes ->
**lowering** -> kernel program). Lowering is purely structural — every
cost-guided choice was already made by :func:`repro.plan.passes.run_passes`
and arrives here as a :class:`~repro.plan.passes.Decisions` record; this
module only maps tree shapes onto the physical operator vocabulary:

* each probe spine becomes one :class:`~repro.plan.physical.Pipeline`,
  build pipelines emitted depth-first so every state a pipeline consumes
  was produced by an earlier one;
* Filters become :class:`FilterStage` ops in the strategy's access style
  (branching for datacentric/interpreter, prepass for hybrid/swole);
* Joins become build-op/probe-op pairs according to the join mode the
  passes chose (hash vs positional bitmap, groupjoin vs plain semijoin,
  index join when columns are carried);
* the root aggregation becomes :class:`ScalarAgg`/:class:`GroupAgg` in
  the decided agg mode — or, for an eager-aggregation rewrite, the whole
  plan collapses into one :class:`EagerAggregate` op.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import List, Optional

from ..errors import PlanError
from ..plan import passes as PS
from ..plan.expressions import And, Expr
from ..plan.logical import JoinSpec, Query
from ..plan.ops import (
    DisjunctJoin,
    ExistsJoin,
    Filter,
    GroupByAgg,
    Join,
    LogicalPlan,
    OuterGroupJoin,
    PlanNode,
    Project,
    Scan,
    base_table,
    is_groupjoin,
    spine,
    spine_filters,
    spine_joins,
)
from ..plan.physical import (
    BRANCH,
    VECTOR,
    BitmapBuild,
    BitmapSemiProbe,
    CarriedGather,
    ColumnMaterialize,
    DisjunctBitmapProbe,
    DisjunctIndexProbe,
    EagerAggregate,
    ExistsBitmapBuild,
    ExistsBitmapProbe,
    FilterStage,
    GroupAgg,
    GroupBuild,
    GroupDistribution,
    GroupJoinAgg,
    HashJoinCarryProbe,
    HashSemiProbe,
    IndexGather,
    JoinBuild,
    MultiBitmapBuild,
    OuterGroupJoinAgg,
    PhysicalOp,
    PhysicalPlan,
    Pipeline,
    ScalarAgg,
    SemiHashBuild,
)
from ..core.planner import EAGER
from ..storage.database import Database


def _access(strategy: str) -> str:
    return BRANCH if strategy in ("interpreter", "datacentric") else VECTOR


def _filter_mode(strategy: str) -> str:
    return "branch" if strategy in ("interpreter", "datacentric") else "prepass"


def _combine(conjs: List[Expr]) -> Optional[Expr]:
    if not conjs:
        return None
    if len(conjs) == 1:
        return conjs[0]
    return And(conjs)


def _spine_predicate(node: PlanNode) -> Optional[Expr]:
    """The AND of all Filter predicates on a spine (legacy-Query form)."""
    preds: List[Expr] = []
    for step in spine(node):
        if isinstance(step, Filter):
            preds.extend(step.conjuncts())
    return _combine(preds)


def _legacy_groupjoin_query(plan: LogicalPlan) -> Query:
    """Reverse-convert an eager-eligible groupjoin tree to a Query.

    The eager pass only fires when the tree has the single-join shape
    (build side is Filter*(Scan)), so the conversion is total there.
    """
    root = plan.root
    assert isinstance(root, GroupByAgg)
    joins = spine_joins(root.child)
    target = joins[-1]
    if len(joins) != 1:
        raise PlanError("eager aggregation needs a single-join plan")
    return Query(
        table=base_table(root.child),
        aggregates=root.aggregates,
        predicate=_spine_predicate(root.child),
        group_by=target.fk_column,
        join=JoinSpec(
            build_table=base_table(target.build),
            fk_column=target.fk_column,
            pk_column=target.pk_column,
            build_predicate=_spine_predicate(target.build),
        ),
        name=plan.name,
    )


def lower_plan(
    plan: LogicalPlan,
    decisions: PS.Decisions,
    db: Database,
    strategy: str,
) -> PhysicalPlan:
    """Lower a bound logical plan into a :class:`PhysicalPlan`."""
    root = plan.root
    if not isinstance(root, GroupByAgg):
        raise PlanError("physical lowering expects a GroupByAgg root")
    access = _access(strategy)
    filter_mode = _filter_mode(strategy)
    interpreted = strategy == "interpreter"

    if decisions.groupjoin_mode == EAGER:
        query = _legacy_groupjoin_query(plan)
        table = base_table(root.child)
        return PhysicalPlan(
            strategy=strategy,
            pipelines=(
                Pipeline(
                    label=f"eager aggregate {table}",
                    table=table,
                    ops=(EagerAggregate(query),),
                ),
            ),
            interpreted=interpreted,
        )

    gj_target = (
        spine_joins(root.child)[-1] if is_groupjoin(root) else None
    )
    pipelines: List[Pipeline] = []

    def emit(pipe: Pipeline) -> None:
        # Shared build subtrees (Q5 reaches nation/region through both
        # customer and supplier) lower to identical pipelines; build
        # the state once.
        if pipe not in pipelines:
            pipelines.append(pipe)

    def bitmap_flavour(mode: str) -> str:
        return "mask" if mode == PS.BITMAP_MASK else "offsets"

    def lower_build(join: Join) -> str:
        """Lower a join's build side into its own pipeline(s)."""
        state = base_table(join.build)
        ops = lower_steps(join.build, in_build=True)
        mode = decisions.join_modes.get(join, PS.HASH_JOIN)
        if join is gj_target:
            ops.append(
                GroupBuild(
                    state, join.pk_column, len(root.aggregates), access
                )
            )
            label = f"build {state}"
        elif mode in (PS.BITMAP_MASK, PS.BITMAP_OFFSETS):
            ops.append(
                BitmapBuild(state, bitmap_flavour(mode), join.carry)
            )
            label = f"bitmap build {state}"
        elif join.carry and not _filters_stream(join.build):
            # Index join: the build pipeline only materializes the
            # carried columns (full length); nothing to hash.
            label = f"scan {state}"
        elif join.carry:
            ops.append(
                JoinBuild(state, join.pk_column, join.carry, access)
            )
            label = f"build {state}"
        else:
            ops.append(SemiHashBuild(state, join.pk_column, access))
            label = f"build {state}"
        emit(Pipeline(label=label, table=state, ops=tuple(ops)))
        return state

    def lower_steps(
        node: PlanNode, in_build: bool = False
    ) -> List[PhysicalOp]:
        """Ops for one spine, excluding the terminal aggregation."""
        ops: List[PhysicalOp] = []
        table = base_table(node)
        pending: List[CarriedGather] = []

        def flush_gathers() -> None:
            # Late materialization: carried columns are gathered only
            # once every semijoin on the spine has narrowed the stream
            # (priced), or composed for free while a build pipeline
            # merely threads them along.
            ops.extend(pending)
            pending.clear()

        for step in spine(node):
            if isinstance(step, Scan):
                continue
            if isinstance(step, Filter):
                cols = set()
                for conj in step.conjuncts():
                    cols |= conj.columns()
                if any(
                    col in gather.columns
                    for gather in pending
                    for col in cols
                ):
                    flush_gathers()
                ops.append(FilterStage(step.conjuncts(), filter_mode))
            elif isinstance(step, Project):
                for name, expr in step.outputs:
                    lut = _lut_entries(db, table, expr)
                    ops.append(
                        ColumnMaterialize(table, name, expr, lut)
                    )
            elif isinstance(step, Join):
                state = lower_build(step)
                mode = decisions.join_modes.get(step, PS.HASH_JOIN)
                if step is gj_target:
                    ops.append(
                        GroupJoinAgg(
                            state,
                            step.fk_column,
                            root.aggregates,
                            access,
                        )
                    )
                elif mode in (PS.BITMAP_MASK, PS.BITMAP_OFFSETS):
                    ops.append(BitmapSemiProbe(state, step.fk_column))
                    if step.carry:
                        pending.append(
                            CarriedGather(
                                state,
                                step.fk_column,
                                step.carry,
                                priced=not in_build,
                            )
                        )
                elif step.carry and not _filters_stream(step.build):
                    ops.append(
                        IndexGather(
                            state, step.fk_column, step.carry, access
                        )
                    )
                elif step.carry:
                    ops.append(
                        HashJoinCarryProbe(
                            state, step.fk_column, step.carry, access
                        )
                    )
                else:
                    ops.append(
                        HashSemiProbe(state, step.fk_column, access)
                    )
            elif isinstance(step, ExistsJoin):
                state = base_table(step.build)
                probe_tbl = base_table(step.probe)
                mode = decisions.join_modes.get(step, PS.HASH_JOIN)
                build_ops = lower_steps(step.build, in_build=True)
                if mode in (PS.BITMAP_MASK, PS.BITMAP_OFFSETS):
                    build_ops.append(
                        ExistsBitmapBuild(
                            state,
                            step.fk_column,
                            probe_tbl,
                            bitmap_flavour(mode),
                        )
                    )
                    emit(
                        Pipeline(
                            label=f"bitmap build {state}",
                            table=state,
                            ops=tuple(build_ops),
                        )
                    )
                    ops.append(ExistsBitmapProbe(state, step.anti))
                else:
                    build_ops.append(
                        SemiHashBuild(
                            state,
                            step.fk_column,
                            access,
                            expected_from=probe_tbl,
                        )
                    )
                    emit(
                        Pipeline(
                            label=f"build {state}",
                            table=state,
                            ops=tuple(build_ops),
                        )
                    )
                    ops.append(
                        HashSemiProbe(
                            state,
                            step.pk_column,
                            access,
                            negate=step.anti,
                        )
                    )
            elif isinstance(step, OuterGroupJoin):
                if _filters_stream(step.build):
                    raise PlanError(
                        "outer groupjoin build must be a plain scan"
                    )
                state = base_table(step.build)
                ops.append(
                    OuterGroupJoinAgg(
                        state,
                        step.fk_column,
                        step.count_name,
                        decisions.outer_mode,
                        build_table=state,
                    )
                )
            elif isinstance(step, DisjunctJoin):
                state = base_table(step.build)
                mode = decisions.join_modes.get(step, PS.HASH_JOIN)
                if mode in (PS.BITMAP_MASK, PS.BITMAP_OFFSETS):
                    build_ops = lower_steps(step.build, in_build=True)
                    build_ops.append(
                        MultiBitmapBuild(
                            state,
                            tuple(bp for bp, _ in step.disjuncts),
                        )
                    )
                    emit(
                        Pipeline(
                            label=f"bitmap build {state}",
                            table=state,
                            ops=tuple(build_ops),
                        )
                    )
                    ops.append(
                        DisjunctBitmapProbe(
                            state, step.fk_column, step.disjuncts
                        )
                    )
                else:
                    # No build pipeline: each surviving probe row reads
                    # its build partner through the FK index in place.
                    ops.append(
                        DisjunctIndexProbe(
                            state, step.fk_column, step.disjuncts, access
                        )
                    )
            elif isinstance(step, GroupByAgg):
                continue  # the caller appends the terminal op
            else:
                raise PlanError(f"cannot lower plan node {step!r}")
        flush_gathers()
        return ops

    outer = next(
        (
            step
            for step in spine(root.child)
            if isinstance(step, OuterGroupJoin)
        ),
        None,
    )
    if outer is not None:
        _check_outer_root(root, outer)

    probe_table = base_table(root.child)
    ops = lower_steps(root.child)
    if gj_target is None and outer is None:
        if root.key is None:
            ops.append(ScalarAgg(root.aggregates, decisions.agg_mode))
        else:
            ops.append(
                GroupAgg(
                    key=root.key,
                    key_name=root.key_name,
                    aggregates=root.aggregates,
                    mode=decisions.agg_mode,
                    expected_groups=decisions.group_cardinality,
                )
            )
    joined = any(
        isinstance(step, (Join, ExistsJoin, DisjunctJoin))
        for step in spine(root.child)
    )
    label = f"{'probe' if joined else 'scan'} {probe_table}"
    merged = (
        decisions.merged_columns
        if decisions.agg_mode in (PS.VALUE_MASK, PS.KEY_MASK)
        else ()
    )
    pipelines.append(
        Pipeline(
            label=label, table=probe_table, ops=tuple(ops), merged=merged
        )
    )
    if outer is not None:
        # The grouped tail runs over the count table, one slot per
        # build key, folding never-seen keys into the zero bucket.
        build_table = base_table(outer.build)
        pipelines.append(
            Pipeline(
                label="distribution",
                table=build_table,
                ops=(
                    GroupDistribution(
                        state=build_table,
                        key_name=root.key_name,
                        agg_name=root.aggregates[0].name,
                    ),
                ),
            )
        )
    return PhysicalPlan(
        strategy=strategy,
        pipelines=tuple(
            _stamp_encoding(pipe, decisions) for pipe in pipelines
        ),
        interpreted=interpreted,
    )


def _stamp_encoding(
    pipe: Pipeline, decisions: PS.Decisions
) -> Pipeline:
    """Attach the table's access-encoding decision to its pipeline.

    The distribution tail scans a hash-table state, not base columns,
    so it never streams codes and keeps an empty encoding.
    """
    encodings = decisions.encodings.get(pipe.table, ())
    if not encodings:
        return pipe
    if any(isinstance(op, GroupDistribution) for op in pipe.ops):
        return pipe
    return dc_replace(pipe, encodings=tuple(encodings))


def _filters_stream(node: PlanNode) -> bool:
    """Whether a build subtree restricts its stream at all."""
    return bool(spine_filters(node)) or bool(spine_joins(node))


def _check_outer_root(root: GroupByAgg, outer: OuterGroupJoin) -> None:
    """The outer groupjoin rekeys the stream; the root must group the
    count column it produces with a single count aggregate."""
    from ..plan.expressions import Col

    if (
        not isinstance(root.key, Col)
        or root.key.name != outer.count_name
        or len(root.aggregates) != 1
        or root.aggregates[0].func != "count"
    ):
        raise PlanError(
            "an OuterGroupJoin plan must group by its count column "
            f"({outer.count_name!r}) with a single count aggregate"
        )


def _lut_entries(db: Database, table: str, expr: Expr) -> int:
    """Dictionary size when a materialized expr probes a dict column."""
    for name in sorted(expr.columns()):
        dictionary = db.table(table).column(name).dictionary
        if dictionary is not None:
            return len(dictionary)
    return 0


#: Final-pipeline ops safe to run over a row-range morsel: they only
#: *read* shared build state (hash tables, bitmaps, carried columns) and
#: slice FK-index offsets to their row range. Excluded on purpose:
#: GroupJoinAgg and OuterGroupJoinAgg mutate the shared build hash
#: table, IndexGather predates morsel state threading (Q14 stays serial,
#: as seeded), and GroupDistribution/EagerAggregate are whole-table
#: passes by construction.
_SPLITTABLE_OPS = (
    FilterStage,
    ScalarAgg,
    GroupAgg,
    HashSemiProbe,
    BitmapSemiProbe,
    ExistsBitmapProbe,
    HashJoinCarryProbe,
    CarriedGather,
    DisjunctIndexProbe,
    DisjunctBitmapProbe,
)


def parallelizable(plan: PhysicalPlan) -> bool:
    """Whether the plan's final pipeline is a partitionable scan.

    Build pipelines (hash tables, bitmaps, carried columns) run once in
    the executor's setup hook; the final pipeline splits into row-range
    morsels when every op is splittable. Interpreted plans stay serial,
    matching the Volcano baseline.
    """
    if plan.interpreted:
        return False
    return all(
        isinstance(op, _SPLITTABLE_OPS)
        for op in plan.pipelines[-1].ops
    )


__all__ = ["lower_plan", "parallelizable"]
