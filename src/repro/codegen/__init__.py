"""Code-generation strategies: data-centric, hybrid, ROF (and SWOLE via
:mod:`repro.core`, which registers itself under the name ``"swole"``)."""

from .base import available_strategies, compile_query, get_strategy

# Importing the strategy modules registers them.
from . import datacentric as _datacentric  # noqa: F401
from . import hybrid as _hybrid  # noqa: F401
from . import rof as _rof  # noqa: F401

__all__ = ["available_strategies", "compile_query", "get_strategy"]
