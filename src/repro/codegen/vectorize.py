"""Vectorized backend: physical pipelines -> generated Python kernels.

The second execution backend. Where :mod:`repro.codegen.physexec`
*interprets* a :class:`~repro.plan.physical.PhysicalPlan` op by op —
doing the work and emitting priced access events — this module
*generates* one plain-Python function per pipeline (whole-column NumPy
statements, no events, no hash tables), compiles the text with
``compile``/``exec``, and returns a
:class:`~repro.codegen.npexec.VectorizedProgram` ready to serve.

The generated code is the access-aware program the paper's compiler
would emit, minus the simulation harness:

- predicates become boolean-mask expressions honoring the same
  value-mask / key-mask semantics the passes decided;
- hash semijoins/joins become ``np.searchsorted`` membership against
  the build side's sorted unique keys;
- grouped aggregation becomes argsort + ``np.add.reduceat`` segment
  sums (int64-exact, so results match the hash-table path bit for
  bit);
- FK-index offset arrays, InSet constant tables, build-side column
  dicts, and non-inlinable expressions are bound into the kernel's
  globals at compile time (``_FK*`` / ``_C*`` / ``_T*`` / ``_E*``).

Expressions are inlined into the source where the node type maps to a
NumPy operator (Col/Const/Compare/And/Or/Arith/InSet/StrMatch);
anything else (Case, dictionary probes) falls back to the bound
expression object's own vectorized ``evaluate``.

Every op's semantics mirror the instrumented executor exactly — that
equivalence is pinned by the backend sweep in
``tests/test_backend_equivalence.py`` across all TPC-H query x
strategy cells, serial and morsel-parallel.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import PlanError
from ..plan import passes as PS
from ..plan.expressions import (
    And,
    Arith,
    Col,
    Compare,
    Const,
    Expr,
    InSet,
    Or,
    StrMatch,
    conjuncts,
)
from ..plan.physical import (
    BitmapBuild,
    BitmapSemiProbe,
    CarriedGather,
    ColumnMaterialize,
    DisjunctBitmapProbe,
    DisjunctIndexProbe,
    EagerAggregate,
    ExistsBitmapBuild,
    ExistsBitmapProbe,
    FilterStage,
    GroupAgg,
    GroupBuild,
    GroupDistribution,
    GroupJoinAgg,
    HashJoinCarryProbe,
    HashSemiProbe,
    IndexGather,
    JoinBuild,
    MultiBitmapBuild,
    OuterGroupJoinAgg,
    PhysicalPlan,
    Pipeline,
    ScalarAgg,
    SemiHashBuild,
)
from ..storage.database import Database
from .npexec import RUNTIME_ENV, VectorizedProgram

_ARITH_SYMBOL = {"add": "+", "sub": "-", "mul": "*"}


class VectorizeError(PlanError):
    """A physical shape the vectorized backend cannot lower (the
    caller falls back to the instrumented backend)."""


class _Env:
    """Kernel globals: runtime helpers plus compile-time bound values."""

    def __init__(self) -> None:
        self.bindings: Dict[str, object] = dict(RUNTIME_ENV)
        self._counts: Dict[str, int] = {}
        self._fk_cache: Dict[Tuple[str, str], str] = {}

    def bind(self, prefix: str, value: object) -> str:
        i = self._counts.get(prefix, 0)
        self._counts[prefix] = i + 1
        name = f"{prefix}{i}"
        self.bindings[name] = value
        return name

    def fk_offsets(self, db: Database, table: str, fk_column: str) -> str:
        key = (table, fk_column)
        name = self._fk_cache.get(key)
        if name is None:
            name = self.bind("_FK", db.fk_index(table, fk_column).offsets)
            self._fk_cache[key] = name
        return name


def compile_expr(expr: Expr, data: str, env: _Env) -> str:
    """Python source for ``expr`` evaluated over the columns of the
    dict variable named ``data``; falls back to a bound expression
    object for node types without an inline form."""
    if isinstance(expr, Col):
        return f"{data}[{expr.name!r}]"
    if isinstance(expr, Const):
        return f"np.int64({expr.value})"
    if isinstance(expr, Compare):
        left = compile_expr(expr.left, data, env)
        right = compile_expr(expr.right, data, env)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, And):
        return "(" + " & ".join(
            compile_expr(term, data, env) for term in expr.terms
        ) + ")"
    if isinstance(expr, Or):
        return "(" + " | ".join(
            compile_expr(term, data, env) for term in expr.terms
        ) + ")"
    if isinstance(expr, Arith):
        left = compile_expr(expr.left, data, env)
        right = compile_expr(expr.right, data, env)
        if expr.op == "div":
            return f"_div({left}, {right})"
        return f"(_i64({left}) {_ARITH_SYMBOL[expr.op]} _i64({right}))"
    if isinstance(expr, InSet):
        child = compile_expr(expr.child, data, env)
        table = env.bind(
            "_C", np.asarray(expr.values, dtype=np.int64)
        )
        return f"np.isin(np.asarray({child}), {table})"
    if isinstance(expr, StrMatch):
        term = f"({data}[{expr.flag_column!r}] != 0)"
        return f"(~{term})" if expr.negated else term
    bound = env.bind("_E", expr)
    return f"{bound}.evaluate({data})"


def _bool(src: str) -> str:
    return f"np.asarray({src}, dtype=bool)"


class _KernelEmitter:
    """Generates the body of one pipeline's kernel function."""

    def __init__(self, pipe: Pipeline, db: Database, env: _Env) -> None:
        self.pipe = pipe
        self.db = db
        self.env = env
        self.view_cols = frozenset(db.data(pipe.table).keys())
        self.lines: List[str] = []
        self.has_mask = False
        self.has_result = False
        self.finalize = None
        self._tmp = 0

    # -- small emission helpers -----------------------------------------

    def out(self, line: str) -> None:
        self.lines.append("    " + line if line else "")

    def name(self, stem: str) -> str:
        self._tmp += 1
        return f"{stem}{self._tmp}"

    def selected(self, src: str) -> str:
        """``src`` narrowed to the live selection (no-op without one)."""
        return f"{src}[mask]" if self.has_mask else src

    def narrow(self, term: str) -> None:
        """``ctx.narrow``: AND ``term`` into the mask (or adopt it)."""
        if self.has_mask:
            self.out(f"mask = mask & {term}")
        else:
            self.out(f"mask = {term}")
            self.has_mask = True

    def mask_or_ones(self) -> str:
        return "mask" if self.has_mask else "np.ones(n, dtype=bool)"

    def fk_offsets_slice(self, fk_column: str) -> str:
        full = self.env.fk_offsets(self.db, self.pipe.table, fk_column)
        off = self.name("off")
        self.out(f"{off} = {full}[lo:lo + n]")
        return off

    def keys_i64(self, column: str) -> str:
        """Selected key values, widened to int64 (both access styles
        of ``_read_keys`` produce the selected values in row order)."""
        return f"{self.selected(f'v[{column!r}]')}.astype(np.int64)"

    def carried_snapshot(self, carry: Tuple[str, ...]) -> str:
        """Full-length payload columns for a build-side state entry."""
        items = ", ".join(
            f"{c!r}: carried.get({c!r}, v.get({c!r}))" for c in carry
        )
        return "{" + items + "}"

    def agg_delta(self, agg, data: str, count_len: str) -> str:
        if agg.func == "count":
            return f"np.ones({count_len}, dtype=np.int64)"
        src = compile_expr(agg.expr, data, self.env)
        return f"np.asarray({src}, dtype=np.int64)"

    # -- operators -------------------------------------------------------

    def emit_op(self, op) -> None:
        handler = _HANDLERS.get(type(op))
        if handler is None:
            raise VectorizeError(
                f"vectorized backend cannot lower {type(op).__name__}"
            )
        handler(self, op)

    def op_filter(self, op: FilterStage) -> None:
        view_conjs = [
            conj
            for conj in op.conjuncts
            if conj.columns() <= self.view_cols
        ]
        carried_conjs = [
            conj for conj in op.conjuncts if conj not in view_conjs
        ]
        for conj in view_conjs:
            self.narrow(_bool(compile_expr(conj, "v", self.env)))
        if carried_conjs:
            full = self.name("full")
            self.out(f"{full} = dict(v)")
            self.out(f"{full}.update(carried)")
            for conj in carried_conjs:
                self.narrow(_bool(compile_expr(conj, full, self.env)))

    def op_semihash_build(self, op: SemiHashBuild) -> None:
        self.out(
            f"state[{op.state!r}] = "
            f"{{'keys': np.unique({self.keys_i64(op.key_column)})}}"
        )

    def op_join_build(self, op: JoinBuild) -> None:
        self.out(
            f"state[{op.state!r}] = {{"
            f"'keys': np.unique({self.keys_i64(op.key_column)}), "
            f"'carried': {self.carried_snapshot(op.carry)}, 'rows': n}}"
        )

    def op_group_build(self, op: GroupBuild) -> None:
        self.out(
            f"state[{op.state!r}] = "
            f"{{'keys': np.unique({self.keys_i64(op.key_column)})}}"
        )

    def op_bitmap_build(self, op: BitmapBuild) -> None:
        mask = "mask.copy()" if self.has_mask else "np.ones(n, dtype=bool)"
        self.out(
            f"state[{op.state!r}] = {{'mask': {mask}, 'rows': n, "
            f"'carried': {self.carried_snapshot(op.carry)}}}"
        )

    def op_hash_semi_probe(self, op: HashSemiProbe) -> None:
        hit = self.name("hit")
        self.out(
            f"{hit} = _member(v[{op.fk_column!r}].astype(np.int64), "
            f"state[{op.state!r}]['keys'])"
        )
        self.narrow(f"~{hit}" if op.negate else hit)

    def op_bitmap_semi_probe(self, op: BitmapSemiProbe) -> None:
        off = self.fk_offsets_slice(op.fk_column)
        self.narrow(f"state[{op.state!r}]['mask'][{off}]")

    def op_column_materialize(self, op: ColumnMaterialize) -> None:
        entry = self.name("entry")
        src = compile_expr(op.expr, "v", self.env)
        self.out(
            f"{entry} = state.setdefault("
            f"{op.state!r}, {{'columns': {{}}, 'rows': n}})"
        )
        self.out(f"{entry}['columns'][{op.column!r}] = np.asarray({src})")

    def op_index_gather(self, op: IndexGather) -> None:
        off = self.fk_offsets_slice(op.fk_column)
        for column in op.columns:
            self.out(
                f"carried[{column!r}] = "
                f"state[{op.state!r}]['columns'][{column!r}][{off}]"
            )

    def op_carried_gather(self, op: CarriedGather) -> None:
        off = self.fk_offsets_slice(op.fk_column)
        for column in op.columns:
            self.out(
                f"carried[{column!r}] = "
                f"state[{op.state!r}]['carried'][{column!r}][{off}]"
            )

    def op_hash_join_carry_probe(self, op: HashJoinCarryProbe) -> None:
        hit = self.name("hit")
        self.out(
            f"{hit} = _member(v[{op.fk_column!r}].astype(np.int64), "
            f"state[{op.state!r}]['keys'])"
        )
        self.narrow(hit)
        off = self.fk_offsets_slice(op.fk_column)
        for column in op.carry:
            self.out(
                f"carried[{column!r}] = "
                f"state[{op.state!r}]['carried'][{column!r}][{off}]"
            )

    def op_exists_bitmap_build(self, op: ExistsBitmapBuild) -> None:
        off = self.fk_offsets_slice(op.fk_column)
        probe_rows = self.db.table(op.probe_table).num_rows
        exists = self.name("exists")
        self.out(f"{exists} = np.zeros({probe_rows}, dtype=bool)")
        set_at = f"{off}[mask]" if self.has_mask else off
        self.out(f"{exists}[{set_at}] = True")
        self.out(
            f"state[{op.state!r}] = "
            f"{{'exists': {exists}, 'rows': {probe_rows}}}"
        )

    def op_exists_bitmap_probe(self, op: ExistsBitmapProbe) -> None:
        bit = self.name("bit")
        self.out(
            f"{bit} = state[{op.state!r}]['exists'][lo:lo + n]"
        )
        self.narrow(f"~{bit}" if op.anti else bit)

    def op_multi_bitmap_build(self, op: MultiBitmapBuild) -> None:
        masks = ", ".join(
            _bool(compile_expr(bp, "v", self.env)) for bp in op.disjuncts
        )
        self.out(
            f"state[{op.state!r}] = {{'masks': [{masks}], 'rows': n}}"
        )

    def op_disjunct_index_probe(self, op: DisjunctIndexProbe) -> None:
        build_cols = sorted(
            set().union(*(bp.columns() for bp, _ in op.disjuncts))
        )
        build_data = self.db.data(op.state)
        table = self.env.bind(
            "_T", {c: build_data[c] for c in build_cols}
        )
        off = self.fk_offsets_slice(op.fk_column)
        rows = self.name("brows")
        items = ", ".join(f"{c!r}: {table}[{c!r}][{off}]" for c in build_cols)
        self.out(f"{rows} = {{{items}}}")
        arms = " | ".join(
            f"({_bool(compile_expr(bp, rows, self.env))}"
            f" & {_bool(compile_expr(pp, 'v', self.env))})"
            for bp, pp in op.disjuncts
        )
        self.narrow(f"({arms})")

    def op_disjunct_bitmap_probe(self, op: DisjunctBitmapProbe) -> None:
        off = self.fk_offsets_slice(op.fk_column)
        bitmaps = self.name("bitmaps")
        self.out(f"{bitmaps} = state[{op.state!r}]['masks']")
        arms = " | ".join(
            f"({bitmaps}[{i}][{off}]"
            f" & {_bool(compile_expr(pp, 'v', self.env))})"
            for i, (_, pp) in enumerate(op.disjuncts)
        )
        self.narrow(f"({arms})")

    def op_outer_groupjoin_agg(self, op: OuterGroupJoinAgg) -> None:
        # All four aggregation modes reduce to "count the selected
        # probe rows per FK value": key masking sends unselected rows
        # to the throwaway entry and value masking adds zero deltas,
        # and the distribution tail folds absent and zero-count keys
        # into the same bucket either way.
        build_rows = self.db.table(op.build_table).num_rows
        uk, cnt = self.name("uk"), self.name("cnt")
        fks = self.selected(f"v[{op.fk_column!r}]")
        self.out(
            f"{uk}, {cnt} = _count_by({fks}.astype(np.int64))"
        )
        self.out(
            f"state[{op.state!r}] = {{'keys': {uk}, 'counts': {cnt}, "
            f"'rows': {build_rows}}}"
        )

    def op_group_distribution(self, op: GroupDistribution) -> None:
        built = self.name("built")
        self.out(f"{built} = state[{op.state!r}]")
        self.out(
            f"result = _distribution({built}['counts'], "
            f"{built}['rows'] - {built}['keys'].shape[0])"
        )
        self.has_result = True

    def op_groupjoin_agg(self, op: GroupJoinAgg) -> None:
        base_cols = [
            c
            for c in sorted(
                set().union(
                    *(
                        a.expr.columns()
                        for a in op.aggregates
                        if a.expr is not None
                    ),
                    frozenset(),
                )
            )
            if c in self.view_cols
        ]
        hit, smask, keys, sub = (
            self.name("hit"),
            self.name("smask"),
            self.name("keys"),
            self.name("sub"),
        )
        self.out(
            f"{hit} = _member(v[{op.fk_column!r}].astype(np.int64), "
            f"state[{op.state!r}]['keys'])"
        )
        self.out(
            f"{smask} = mask & {hit}" if self.has_mask else f"{smask} = {hit}"
        )
        self.out(f"{keys} = v[{op.fk_column!r}][{smask}].astype(np.int64)")
        items = ", ".join(f"{c!r}: v[{c!r}][{smask}]" for c in base_cols)
        self.out(f"{sub} = {{{items}}}")
        deltas = ", ".join(
            self.agg_delta(agg, sub, f"{keys}.shape[0]")
            for agg in op.aggregates
        )
        self.out(f"result = _group({keys}, [{deltas}])")
        self.has_result = True

    def _subset_inputs(self, cols: List[str]) -> str:
        """``sub`` dict of selected base columns plus selected carried
        values (the conditional/gathered aggregation input)."""
        sub = self.name("sub")
        items = ", ".join(
            f"{c!r}: {self.selected(f'v[{c!r}]')}" for c in cols
        )
        self.out(f"{sub} = {{{items}}}")
        if self.has_mask:
            self.out(f"for _nm, _vv in carried.items(): {sub}[_nm] = _vv[mask]")
        else:
            self.out(f"for _nm, _vv in carried.items(): {sub}[_nm] = _vv")
        return sub

    def op_scalar_agg(self, op: ScalarAgg) -> None:
        base_cols = [
            c
            for c in sorted(
                set().union(
                    *(
                        a.expr.columns()
                        for a in op.aggregates
                        if a.expr is not None
                    ),
                    frozenset(),
                )
            )
            if c in self.view_cols
        ]
        self.out("result = {}")
        if op.mode == PS.VALUE_MASK:
            # §III-A: evaluate over the whole column, mask the deltas.
            # A where-reduction skips the unmasked rows without ever
            # materialising a 0/1 multiplier column; int64 addition is
            # commutative mod 2**64, so the answer is still exact.
            for agg in op.aggregates:
                if agg.func == "count":
                    count = "int(mask.sum())" if self.has_mask else "n"
                    self.out(f"result[{agg.name!r}] = {count}")
                    continue
                src = compile_expr(agg.expr, "v", self.env)
                values = f"np.asarray({src}, dtype=np.int64)"
                total = f"np.sum({values}, dtype=np.int64)"
                if self.has_mask:
                    total = (
                        f"np.sum({values}, dtype=np.int64, "
                        "where=mask, initial=np.int64(0))"
                    )
                self.out(f"result[{agg.name!r}] = int({total})")
        elif op.mode in (PS.CONDITIONAL, PS.GATHERED):
            sub = self._subset_inputs(base_cols)
            count = "int(mask.sum())" if self.has_mask else "n"
            k = self.name("k")
            self.out(f"{k} = {count}")
            for agg in op.aggregates:
                if agg.func == "count":
                    self.out(f"result[{agg.name!r}] = {k}")
                    continue
                self.out(
                    f"result[{agg.name!r}] = int(np.sum("
                    f"{self.agg_delta(agg, sub, k)}, dtype=np.int64))"
                )
        else:
            raise VectorizeError(
                f"unknown scalar aggregation mode {op.mode!r}"
            )
        self.has_result = True

    def op_group_agg(self, op: GroupAgg) -> None:
        base_cols = [
            c
            for c in sorted(
                set().union(
                    *(
                        a.expr.columns()
                        for a in op.aggregates
                        if a.expr is not None
                    ),
                    frozenset(),
                )
            )
            if c in self.view_cols
        ]
        if op.mode in (PS.KEY_MASK, PS.VALUE_MASK):
            # Masked modes evaluate keys and deltas over the whole
            # column (matching the instrumented error semantics), then
            # drop the masked rows: key masking blends them into the
            # throwaway entry (removed from the result) and value
            # masking zeroes their deltas and drops never-hit groups —
            # both equal to grouping only the selected rows.
            keys = self.name("keys")
            key_src = compile_expr(op.key, "v", self.env)
            self.out(f"{keys} = np.asarray({key_src}, dtype=np.int64)")
            delta_names = []
            for agg in op.aggregates:
                d = self.name("d")
                self.out(f"{d} = {self.agg_delta(agg, 'v', 'n')}")
                delta_names.append(d)
            deltas = ", ".join(delta_names)
            if self.has_mask:
                # The runtime folds the mask into the grouping itself
                # (sentinel bucket) — no per-delta subset copies.
                self.out(f"result = _group({keys}, [{deltas}], mask)")
            else:
                self.out(f"result = _group({keys}, [{deltas}])")
        elif op.mode in (PS.CONDITIONAL, PS.GATHERED):
            cols = sorted(
                (set(op.key.columns()) & self.view_cols) | set(base_cols)
            )
            sub = self._subset_inputs(cols)
            count = "int(mask.sum())" if self.has_mask else "n"
            k = self.name("k")
            self.out(f"{k} = {count}")
            keys = self.name("keys")
            key_src = compile_expr(op.key, sub, self.env)
            self.out(f"{keys} = np.asarray({key_src}, dtype=np.int64)")
            deltas = ", ".join(
                self.agg_delta(agg, sub, k) for agg in op.aggregates
            )
            self.out(f"result = _group({keys}, [{deltas}])")
        else:
            raise VectorizeError(
                f"unknown grouped aggregation mode {op.mode!r}"
            )
        self.has_result = True

    def op_eager_aggregate(self, op: EagerAggregate) -> None:
        # §III-E vectorized: group the probe rows that pass the main
        # predicate by FK (unselected rows belong to the throwaway
        # entry, i.e. are dropped), then delete the keys whose build
        # row fails the build predicate. The victim set is static per
        # database, so it is computed here at compile time; the
        # deletion itself runs as the program's finalize step so morsel
        # partials stay mergeable (filter once, after the merge).
        query = op.query
        join = query.join
        if query.table != self.pipe.table:
            raise VectorizeError(
                "eager aggregation pipeline scans an unexpected table"
            )
        build_data = self.db.data(join.build_table)
        build_conjs = conjuncts(join.build_predicate)
        if build_conjs:
            keep = np.ones(
                int(next(iter(build_data.values())).shape[0]), dtype=bool
            )
            for conj in build_conjs:
                keep = keep & np.asarray(conj.evaluate(build_data), bool)
            victims = build_data[join.pk_column][~keep].astype(np.int64)
        else:
            victims = np.empty(0, dtype=np.int64)

        def cleanup(merged: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            keep_keys = ~np.isin(merged["keys"], victims)
            return {
                "keys": merged["keys"][keep_keys],
                "aggs": merged["aggs"][keep_keys],
            }

        self.finalize = cleanup
        for conj in query.predicate_conjuncts():
            self.narrow(_bool(compile_expr(conj, "v", self.env)))
        keys = self.name("keys")
        self.out(f"{keys} = v[{join.fk_column!r}].astype(np.int64)")
        delta_names = []
        for agg in query.aggregates:
            d = self.name("d")
            self.out(f"{d} = {self.agg_delta(agg, 'v', 'n')}")
            delta_names.append(d)
        deltas = ", ".join(delta_names)
        if self.has_mask:
            self.out(f"result = _group({keys}, [{deltas}], mask)")
        else:
            self.out(f"result = _group({keys}, [{deltas}])")
        self.has_result = True

    # -- assembly --------------------------------------------------------

    def emit(self, fn_name: str) -> str:
        for op in self.pipe.ops:
            self.emit_op(op)
        header = [
            f"def {fn_name}(v, state, lo):",
            f"    # pipeline {self.pipe.label!r} over {self.pipe.table}",
            "    n = _rows(v)",
            "    carried = {}",
        ]
        footer = ["    return result" if self.has_result else "    return None"]
        return "\n".join(header + self.lines + footer)


_HANDLERS = {
    FilterStage: _KernelEmitter.op_filter,
    SemiHashBuild: _KernelEmitter.op_semihash_build,
    JoinBuild: _KernelEmitter.op_join_build,
    GroupBuild: _KernelEmitter.op_group_build,
    BitmapBuild: _KernelEmitter.op_bitmap_build,
    MultiBitmapBuild: _KernelEmitter.op_multi_bitmap_build,
    ExistsBitmapBuild: _KernelEmitter.op_exists_bitmap_build,
    HashSemiProbe: _KernelEmitter.op_hash_semi_probe,
    HashJoinCarryProbe: _KernelEmitter.op_hash_join_carry_probe,
    BitmapSemiProbe: _KernelEmitter.op_bitmap_semi_probe,
    ExistsBitmapProbe: _KernelEmitter.op_exists_bitmap_probe,
    CarriedGather: _KernelEmitter.op_carried_gather,
    DisjunctIndexProbe: _KernelEmitter.op_disjunct_index_probe,
    DisjunctBitmapProbe: _KernelEmitter.op_disjunct_bitmap_probe,
    ColumnMaterialize: _KernelEmitter.op_column_materialize,
    IndexGather: _KernelEmitter.op_index_gather,
    GroupJoinAgg: _KernelEmitter.op_groupjoin_agg,
    OuterGroupJoinAgg: _KernelEmitter.op_outer_groupjoin_agg,
    GroupDistribution: _KernelEmitter.op_group_distribution,
    ScalarAgg: _KernelEmitter.op_scalar_agg,
    GroupAgg: _KernelEmitter.op_group_agg,
    EagerAggregate: _KernelEmitter.op_eager_aggregate,
}


def compile_physical(
    physical: PhysicalPlan, db: Database, name: str = "query"
) -> VectorizedProgram:
    """Generate, ``exec``, and wrap one kernel per pipeline."""
    env = _Env()
    sources: List[str] = [
        f"# vectorized kernels for {name} [{physical.strategy}]",
    ]
    fn_names: List[str] = []
    finalize = None
    for idx, pipe in enumerate(physical.pipelines):
        fn_name = f"_kernel_{idx}"
        emitter = _KernelEmitter(pipe, db, env)
        sources.append(emitter.emit(fn_name))
        fn_names.append(fn_name)
        if emitter.finalize is not None:
            finalize = emitter.finalize
    source = "\n\n".join(sources) + "\n"
    code = compile(source, f"<vectorized:{name}>", "exec")
    namespace = env.bindings
    exec(code, namespace)  # noqa: S102 - the source is generated above
    kernels = [
        (pipe, namespace[fn_name])
        for pipe, fn_name in zip(physical.pipelines, fn_names)
    ]
    # Serve each kernel the scan view its pipeline was planned for:
    # columns the access-encoding pass chose stream as physical codes
    # (narrow dtypes), everything else decoded. The kernels are value
    # safe over codes — keys and aggregate deltas cast through int64
    # and comparisons promote — so output stays byte-identical.
    data = [
        db.scan_view(pipe.table, pipe.encodings)
        for pipe in physical.pipelines
    ]
    return VectorizedProgram(kernels, data, source, finalize=finalize)


__all__ = ["VectorizeError", "compile_expr", "compile_physical"]
