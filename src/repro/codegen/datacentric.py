"""Data-centric (HyPer-style) code generation — paper §II-A1.

One fused, push-based loop per pipeline; tuples stay "in registers".
Predicates become per-tuple ``if`` statements (short-circuit conjuncts),
so downstream column accesses are *conditional* and every predicate is a
branch-misprediction site. No SIMD: the control dependency precludes it.

Pipeline bodies take the scanned columns as an explicit parameter so the
morsel executor can run them over row-range slices; scans and semijoin
probes declare :class:`~repro.engine.program.ParallelPlan`s, while the
groupjoin mutates the shared build-side table and stays serial.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..engine import kernels as K
from ..engine.hashtable import HashTable
from ..engine.program import CompiledQuery, ParallelPlan
from ..engine.session import Session
from ..plan.expressions import conjuncts
from ..plan.logical import Query
from ..storage.database import Database
from .base import register_strategy
from .common import (
    agg_exprs_columns,
    datacentric_predicate,
    emit_cond_reads,
    eval_aggregates_subset,
    grouped_result,
    slice_columns,
    table_rows,
)
from .emit import emit_datacentric


def _build_hash_table(
    session: Session,
    db: Database,
    query: Query,
    num_aggs: int,
) -> HashTable:
    """Build-side pipeline: filtered scan of the build table, hash insert."""
    join = query.join
    build_data = db.data(join.build_table)
    build_conjs = conjuncts(join.build_predicate)
    with session.tracer.kernel(f"build {join.build_table}"), \
            session.tracer.overlap():
        if build_conjs:
            mask = datacentric_predicate(session, build_data, build_conjs)
        else:
            mask = np.ones(table_rows(build_data), dtype=bool)
            K.scalar_loop(session, int(mask.shape[0]))
        keys = build_data[join.pk_column][mask]
        emit_cond_reads(session, build_data, [join.pk_column], int(mask.sum()))
        table = HashTable(expected_keys=int(mask.sum()), num_aggs=num_aggs)
        K.ht_insert_keys(session, table, keys.astype(np.int64))
    return table


@register_strategy("datacentric")
def compile_datacentric(query: Query, db: Database) -> CompiledQuery:
    """Compile ``query`` with the data-centric strategy."""
    data = db.data(query.table)
    n_rows = table_rows(data)
    source = emit_datacentric(query)
    conjs = query.predicate_conjuncts()
    agg_cols = agg_exprs_columns(query.aggregates)

    def run(session: Session) -> Dict[str, Any]:
        if query.join is not None:
            return _run_join(session)
        with session.tracer.overlap():
            return _run_scan(session, data)

    def _scan_mask(
        session: Session, view: Dict[str, np.ndarray]
    ) -> np.ndarray:
        if conjs:
            return datacentric_predicate(session, view, conjs)
        mask = np.ones(table_rows(view), dtype=bool)
        K.scalar_loop(session, int(mask.shape[0]))
        return mask

    def _run_scan(
        session: Session, view: Dict[str, np.ndarray]
    ) -> Dict[str, Any]:
        mask = _scan_mask(session, view)
        k = int(mask.sum())
        if query.group_by is None:
            with session.tracer.kernel("aggregate"):
                emit_cond_reads(session, view, agg_cols, k)
                return eval_aggregates_subset(
                    session, view, query.aggregates, mask, simd=False
                )
        with session.tracer.kernel("group-by aggregate"):
            emit_cond_reads(
                session, view, set(agg_cols) | {query.group_by}, k
            )
            return _grouped_aggregate(session, view, mask)

    def _grouped_aggregate(
        session: Session, view: Dict[str, np.ndarray], mask: np.ndarray
    ) -> Dict[str, Any]:
        keys = view[query.group_by][mask].astype(np.int64)
        table = HashTable(
            expected_keys=_expected_groups(keys),
            num_aggs=len(query.aggregates),
        )
        subset = {name: values[mask] for name, values in view.items()}
        for i, agg in enumerate(query.aggregates):
            if agg.func == "count":
                deltas = np.ones(keys.shape[0], dtype=np.int64)
            else:
                deltas = np.asarray(
                    agg.expr.evaluate(subset), dtype=np.int64
                )
            K.ht_aggregate(session, table, keys, deltas, agg=i)
        result_keys, result_aggs = table.items()
        return grouped_result(result_keys, result_aggs)

    def _probe_semijoin(
        session: Session, view: Dict[str, np.ndarray], table: HashTable
    ) -> Dict[str, Any]:
        with session.tracer.kernel(f"probe {query.table}"), \
                session.tracer.overlap():
            mask = _scan_mask(session, view)
            k = int(mask.sum())
            emit_cond_reads(session, view, [query.join.fk_column], k)
            fk = view[query.join.fk_column][mask].astype(np.int64)
            _, found = K.ht_lookup(session, table, fk)
            taken = float(found.mean()) if found.size else 0.0
            session.tracer.emit(
                K.Branch(n=k, taken_fraction=taken, site="join-match")
            )
            match_mask = mask.copy()
            match_mask[mask] = found
            emit_cond_reads(session, view, agg_cols, int(match_mask.sum()))
            return eval_aggregates_subset(
                session, view, query.aggregates, match_mask, simd=False
            )

    def _run_join(session: Session) -> Dict[str, Any]:
        if query.is_groupjoin:
            return _run_groupjoin(session)
        table = _build_hash_table(session, db, query, num_aggs=0)
        return _probe_semijoin(session, data, table)

    def _run_groupjoin(session: Session) -> Dict[str, Any]:
        # Groupjoin (Moerkotte & Neumann): the build-side hash table is
        # reused to hold the aggregates; a trailing count column marks
        # groups that actually matched probe tuples.
        num_aggs = len(query.aggregates) + 1
        table = _build_hash_table(session, db, query, num_aggs=num_aggs)
        with session.tracer.kernel(f"probe {query.table}"), \
                session.tracer.overlap():
            mask = _scan_mask(session, data)
            k = int(mask.sum())
            emit_cond_reads(session, data, [query.join.fk_column], k)
            fk = data[query.join.fk_column][mask].astype(np.int64)
            slots, found = K.ht_lookup(session, table, fk)
            taken = float(found.mean()) if found.size else 0.0
            session.tracer.emit(
                K.Branch(n=k, taken_fraction=taken, site="join-match")
            )
            hit_slots = slots[found]
            emit_cond_reads(session, data, agg_cols, int(found.sum()))
            subset_mask = mask.copy()
            subset_mask[mask] = found
            subset = {
                name: values[subset_mask] for name, values in data.items()
            }
            for i, agg in enumerate(query.aggregates):
                if agg.func == "count":
                    deltas = np.ones(hit_slots.shape[0], dtype=np.int64)
                else:
                    deltas = np.asarray(
                        agg.expr.evaluate(subset), dtype=np.int64
                    )
                K.ht_add_at(session, table, hit_slots, i, deltas)
            K.ht_add_at(
                session,
                table,
                hit_slots,
                num_aggs - 1,
                np.ones(hit_slots.shape[0], dtype=np.int64),
            )
            keys, aggs = table.items()
            touched = aggs[:, num_aggs - 1] > 0
            return grouped_result(
                keys[touched], aggs[touched, : len(query.aggregates)]
            )

    parallel = None
    if query.join is None:

        def scan_partial(session, ctx, lo, hi):
            with session.tracer.overlap():
                return _run_scan(session, slice_columns(data, lo, hi))

        parallel = ParallelPlan(
            table=query.table, n_rows=n_rows, partial=scan_partial
        )
    elif not query.is_groupjoin:

        def probe_setup(session):
            return _build_hash_table(session, db, query, num_aggs=0)

        def probe_partial(session, table, lo, hi):
            return _probe_semijoin(session, slice_columns(data, lo, hi), table)

        parallel = ParallelPlan(
            table=query.table,
            n_rows=n_rows,
            partial=probe_partial,
            setup=probe_setup,
        )

    return CompiledQuery(
        name=query.name,
        strategy="datacentric",
        source=source,
        _fn=run,
        parallel=parallel,
    )


def _expected_groups(keys: np.ndarray) -> int:
    """Sizing estimate for the group hash table."""
    if keys.size == 0:
        return 1
    sample = keys[: min(keys.shape[0], 65536)]
    distinct = int(np.unique(sample).shape[0])
    if distinct >= 0.9 * sample.shape[0]:
        return max(int(distinct * keys.shape[0] / sample.shape[0]), 1)
    return max(distinct, 1)


@register_strategy("interpreter")
def compile_interpreter(query: Query, db: Database) -> CompiledQuery:
    """Volcano-style interpreter (the HyPer-slot sanity baseline).

    Executes like the data-centric program — tuple at a time with the same
    access patterns — but pays per-tuple iterator dispatch for every
    operator a classic interpreted engine would run. Iterator dispatch is
    inherently serial control flow, so no parallel plan is declared.
    """
    from .emit import emit_interpreter

    inner = compile_datacentric(query, db)

    def run(session: Session) -> Dict[str, Any]:
        operators = 2  # scan + aggregate
        operators += 1 if query.predicate is not None else 0
        operators += 1 if query.join is not None else 0
        n = db.table(query.table).num_rows
        K.interpreter_overhead(session, n, operators=operators)
        if query.join is not None:
            K.interpreter_overhead(
                session, db.table(query.join.build_table).num_rows, operators=2
            )
        return inner._fn(session)

    return CompiledQuery(
        name=query.name,
        strategy="interpreter",
        source=emit_interpreter(query),
        _fn=run,
    )
