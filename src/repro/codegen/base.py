"""Strategy interface for code generation.

A strategy turns a logical :class:`~repro.plan.logical.Query` plus a
:class:`~repro.storage.database.Database` into a
:class:`~repro.engine.program.CompiledQuery`. Strategies are stateless;
:func:`get_strategy` resolves them by name so benches and examples can be
parameterised by strings.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List

from ..engine.program import CompiledQuery
from ..errors import CodegenError
from ..plan.logical import Query
from ..storage.database import Database

#: Signature of a strategy compile entry point.
CompileFn = Callable[[Query, Database], CompiledQuery]

_REGISTRY: Dict[str, CompileFn] = {}


def register_strategy(
    name: str, replace: bool = False
) -> Callable[[CompileFn], CompileFn]:
    """Decorator registering a compile function under ``name``.

    Re-registering a name is an error unless ``replace=True``, which
    overwrites the existing strategy with a warning — for tests and
    experiments that shadow a built-in strategy deliberately.
    """

    def decorator(fn: CompileFn) -> CompileFn:
        if name in _REGISTRY:
            if not replace:
                raise CodegenError(
                    f"strategy {name!r} already registered; pass "
                    "replace=True to overwrite"
                )
            warnings.warn(
                f"overwriting registered strategy {name!r}",
                RuntimeWarning,
                stacklevel=2,
            )
        _REGISTRY[name] = fn
        return fn

    return decorator


def get_strategy(name: str) -> CompileFn:
    """Resolve a strategy by name (e.g. ``"hybrid"``, ``"swole"``)."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise CodegenError(
            f"unknown strategy {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc


def available_strategies() -> List[str]:
    """Names of all registered strategies (sorted)."""
    return sorted(_REGISTRY)


def compile_query(query: Query, db: Database, strategy: str) -> CompiledQuery:
    """Compile ``query`` with the named strategy."""
    return get_strategy(strategy)(query, db)
