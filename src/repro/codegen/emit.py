"""C-like source emitters.

Each strategy emits the pseudocode it would hand to a C compiler, shaped
after the paper's Figures 1 (data-centric / hybrid / ROF), 3 (value
masking), 4 (key masking), and 5 (access merging). The emitted text is
attached to every :class:`~repro.engine.program.CompiledQuery` and is
what ``examples/emitted_code_tour.py`` prints.
"""

from __future__ import annotations

from typing import List, Optional

from ..plan.logical import Query


def _pred_c(query: Query) -> str:
    if query.predicate is None:
        return "true"
    return query.predicate.to_c()


def _agg_c(query: Query) -> List[str]:
    lines = []
    for agg in query.aggregates:
        if agg.func == "count":
            lines.append(f"{agg.name} += 1;")
        else:
            lines.append(f"{agg.name} += {agg.expr.to_c()};")
    return lines


def _indent(lines: List[str], depth: int) -> List[str]:
    pad = "    " * depth
    return [pad + line for line in lines]


def emit_datacentric(query: Query) -> str:
    """Single fused loop with an ``if`` per tuple (paper Fig. 1, top)."""
    body: List[str] = []
    body.append(f"for (i = 0; i < {query.table}; i++) {{")
    body.append(f"    if ({_pred_c(query)}) {{")
    if query.join is not None:
        body.append(
            f"        if (ht_contains(ht, {query.join.fk_column}[i])) {{"
        )
        inner = _agg_c(query)
        body.extend(_indent(inner, 3))
        body.append("        }")
    elif query.group_by is not None:
        body.append(f"        entry = ht_find(ht, {query.group_by}[i]);")
        body.extend(_indent(_agg_c_entry(query), 2))
    else:
        body.extend(_indent(_agg_c(query), 2))
    body.append("    }")
    body.append("}")
    return "\n".join(_build_prefix(query, "data-centric") + body)


def _agg_c_entry(query: Query) -> List[str]:
    lines = []
    for agg in query.aggregates:
        if agg.func == "count":
            lines.append("entry->count += 1;")
        else:
            lines.append(f"entry->{agg.name} += {agg.expr.to_c()};")
    return lines


def _build_prefix(query: Query, strategy: str) -> List[str]:
    lines = [f"// strategy: {strategy}", f"// query: {query.name}"]
    if query.join is not None:
        join = query.join
        pred = (
            join.build_predicate.to_c()
            if join.build_predicate is not None
            else "true"
        )
        lines.append(f"// build side: scan {join.build_table}")
        lines.append(f"for (i = 0; i < {join.build_table}; i++) {{")
        lines.append(f"    if ({pred})")
        lines.append(f"        ht_insert(ht, {join.pk_column}[i]);")
        lines.append("}")
    return lines


def _prepass_lines(query: Query, target: str = "cmp") -> List[str]:
    lines = []
    conjs = query.predicate_conjuncts()
    if not conjs:
        lines.append(f"        {target}[j] = 1;")
        return lines
    parts = [f"({c.to_c().replace('[i]', '[i+j]')})" for c in conjs]
    lines.append(f"        {target}[j] = {' & '.join(parts)};")
    return lines


def emit_hybrid(query: Query) -> str:
    """Tiled prepass + selection vector (paper Fig. 1, middle)."""
    body: List[str] = []
    body.append(f"for (i = 0; i < {query.table}; i += TILE) {{")
    body.append(f"    len = {query.table} - i < TILE ? {query.table} - i : TILE;")
    body.append("    for (j = 0; j < len; j++)  // prepass (SIMD)")
    body.extend(_prepass_lines(query))
    body.append("    k = 0;")
    body.append("    for (j = 0; j < len; j++) {  // selection vector (no-branch)")
    body.append("        idx[k] = i + j;")
    body.append("        k += cmp[j];")
    body.append("    }")
    body.append("    for (j = 0; j < k; j++) {")
    inner = _hybrid_agg_lines(query)
    body.extend(_indent(inner, 2))
    body.append("    }")
    body.append("}")
    return "\n".join(_build_prefix(query, "hybrid") + body)


def _hybrid_agg_lines(query: Query) -> List[str]:
    lines = []
    subst = lambda text: text.replace("[i]", "[idx[j]]")  # noqa: E731
    if query.join is not None:
        lines.append(f"if (ht_contains(ht, {query.join.fk_column}[idx[j]]))")
        for agg in query.aggregates:
            if agg.func == "count":
                lines.append(f"    {agg.name} += 1;")
            else:
                lines.append(f"    {agg.name} += {subst(agg.expr.to_c())};")
    elif query.group_by is not None:
        lines.append(f"entry = ht_find(ht, {query.group_by}[idx[j]]);")
        for agg in query.aggregates:
            if agg.func == "count":
                lines.append("entry->count += 1;")
            else:
                lines.append(f"entry->{agg.name} += {subst(agg.expr.to_c())};")
    else:
        for agg in query.aggregates:
            if agg.func == "count":
                lines.append(f"{agg.name} += 1;")
            else:
                lines.append(f"{agg.name} += {subst(agg.expr.to_c())};")
    return lines


def emit_rof(query: Query) -> str:
    """Relaxed operator fusion: fill a full idx vector, then stage
    (paper Fig. 1, bottom). Prefetches precede hash accesses."""
    body: List[str] = []
    body.append("i = 0;")
    body.append(f"while (i < {query.table}) {{")
    body.append("    // stage 1: fill idx with passing tuples (SIMD via LUT)")
    body.append(f"    for (k = 0; i < {query.table} && k < TILE; i++) {{")
    conjs = query.predicate_conjuncts()
    pred = (
        " & ".join(f"({c.to_c()})" for c in conjs) if conjs else "1"
    )
    body.append("        idx[k] = i;")
    body.append(f"        k += {pred};")
    body.append("    }")
    body.append("    // stage 2: aggregate staged tuples")
    if query.join is not None or query.group_by is not None:
        body.append("    for (j = 0; j < k; j++)  // prefetch hash lines")
        key = (
            query.join.fk_column if query.join is not None else query.group_by
        )
        body.append(f"        prefetch(ht_slot(ht, {key}[idx[j]]));")
    body.append("    for (j = 0; j < k; j++) {")
    body.extend(_indent(_hybrid_agg_lines(query), 2))
    body.append("    }")
    body.append("}")
    return "\n".join(_build_prefix(query, "ROF") + body)


def emit_value_masking(query: Query, merged: Optional[List[str]] = None) -> str:
    """Value masking / access merging (paper Figs. 3 and 5)."""
    merged = merged or []
    body: List[str] = []
    strategy = "SWOLE (value masking"
    if merged:
        strategy += " + access merging"
    strategy += ")"
    body.append(f"for (i = 0; i < {query.table}; i += TILE) {{")
    body.append(f"    len = {query.table} - i < TILE ? {query.table} - i : TILE;")
    body.append("    for (j = 0; j < len; j++)  // prepass (SIMD)")
    if merged:
        col = merged[0]
        conjs = query.predicate_conjuncts()
        pred = " & ".join(
            f"({c.to_c().replace('[i]', '[i+j]')})" for c in conjs
        )
        body.append(f"        tmp[j] = {col}[i+j] * ({pred});  // merged access")
    else:
        body.extend(_prepass_lines(query))
    body.append("    for (j = 0; j < len; j++) {  // masked aggregation (SIMD)")
    for agg in query.aggregates:
        expr_c = (
            agg.expr.to_c().replace("[i]", "[i+j]") if agg.expr else "1"
        )
        if merged:
            expr_c = expr_c.replace(f"{merged[0]}[i+j]", "tmp[j]")
            body.append(f"        {agg.name} += {expr_c};")
        else:
            body.append(f"        {agg.name} += ({expr_c}) * cmp[j];")
    body.append("    }")
    body.append("}")
    return "\n".join(_build_prefix(query, strategy) + body)


def emit_key_masking(query: Query) -> str:
    """Key masking for group-by aggregation (paper Fig. 4, bottom)."""
    body: List[str] = []
    conjs = query.predicate_conjuncts()
    pred = (
        " & ".join(f"({c.to_c().replace('[i]', '[i+j]')})" for c in conjs)
        if conjs
        else "1"
    )
    group = query.group_by
    body.append(f"for (i = 0; i < {query.table}; i += TILE) {{")
    body.append(f"    len = {query.table} - i < TILE ? {query.table} - i : TILE;")
    body.append("    for (j = 0; j < len; j++)  // mask the group-by key")
    body.append(f"        key[j] = ({pred}) ? {group}[i+j] : NULL_KEY;")
    body.append("    for (j = 0; j < len; j++) {  // aggregate every key")
    body.append("        entry = ht_find(ht, key[j]);")
    for agg in query.aggregates:
        expr_c = agg.expr.to_c().replace("[i]", "[i+j]") if agg.expr else "1"
        if agg.func == "count":
            body.append("        entry->count += 1;")
        else:
            body.append(f"        entry->{agg.name} += {expr_c};")
    body.append("    }")
    body.append("}")
    body.append("ht_drop(ht, NULL_KEY);  // discard the throwaway entry")
    return "\n".join(_build_prefix(query, "SWOLE (key masking)") + body)


def emit_bitmap_semijoin(query: Query, unconditional_build: bool) -> str:
    """Positional-bitmap semijoin (paper §III-D)."""
    join = query.join
    pred = (
        join.build_predicate.to_c()
        if join.build_predicate is not None
        else "true"
    )
    body: List[str] = [
        "// strategy: SWOLE (positional bitmap semijoin)",
        f"// query: {query.name}",
        f"// build bitmap over {join.build_table} (sequential scan)",
        f"for (i = 0; i < {join.build_table}; i++)",
    ]
    if unconditional_build:
        body.append(f"    bitmap_set(bm, i, {pred});  // unconditional write")
    else:
        body.append(f"    if ({pred}) bitmap_set(bm, i, 1);")
    body.append(f"// probe via the {query.table}.{join.fk_column} FK index")
    body.append(f"for (i = 0; i < {query.table}; i++) {{")
    main_pred = _pred_c(query)
    body.append(f"    pass = ({main_pred}) & bitmap_test(bm, fk_offset[i]);")
    for agg in query.aggregates:
        expr_c = agg.expr.to_c() if agg.expr else "1"
        if agg.func == "count":
            body.append("    count += pass;")
        else:
            body.append(f"    {agg.name} += ({expr_c}) * pass;  // value masked")
    body.append("}")
    return "\n".join(body)


def emit_eager_aggregation(query: Query) -> str:
    """Eager aggregation replacing a groupjoin (paper §III-E)."""
    join = query.join
    pred = (
        join.build_predicate.to_c()
        if join.build_predicate is not None
        else "true"
    )
    inverted = f"!({pred})"
    body: List[str] = [
        "// strategy: SWOLE (eager aggregation)",
        f"// query: {query.name}",
        f"// 1. unconditional aggregation of {query.table} grouped by "
        f"{join.fk_column}",
        f"for (i = 0; i < {query.table}; i++) {{",
        f"    entry = ht_find(ht, {join.fk_column}[i]);",
    ]
    for agg in query.aggregates:
        expr_c = agg.expr.to_c() if agg.expr else "1"
        if agg.func == "count":
            body.append("    entry->count += 1;")
        else:
            body.append(f"    entry->{agg.name} += {expr_c};")
    body.append("}")
    body.append(
        f"// 2. delete non-qualifying keys with a sequential scan of "
        f"{join.build_table} (note the inverted predicate)"
    )
    body.append(f"for (i = 0; i < {join.build_table}; i++)")
    body.append(f"    if ({inverted}) ht_delete(ht, {join.pk_column}[i]);")
    return "\n".join(body)


def emit_interpreter(query: Query) -> str:
    """Volcano-style iterator plan (the sanity-check baseline)."""
    lines = [
        "// strategy: interpreter (Volcano iterators; sanity baseline)",
        f"// query: {query.name}",
        "plan = Aggregate(",
    ]
    if query.join is not None:
        lines.append(
            f"    HashJoin(Select(Scan({query.join.build_table})), "
        )
        lines.append(f"        Select(Scan({query.table}))),")
    else:
        lines.append(f"    Select(Scan({query.table})),")
    lines.append(
        f"    group_by={query.group_by!r}, "
        f"aggs={[a.name for a in query.aggregates]!r})"
    )
    lines.append("while ((tuple = plan->next()) != NULL) { ... }")
    return "\n".join(lines)
