"""Relaxed operator fusion (Peloton-style) — paper §II-A3.

ROF stages full selection vectors at pipeline "staging points" and issues
software prefetches before hash-table accesses. Its access *patterns* are
the same as the hybrid strategy's (both are `s_trav_cr`); the differences
are control flow (one always-full ``idx`` vector) and latency hiding on
hash accesses. The paper excluded ROF from its evaluation because its
relative runtimes were the same as or worse than hybrid's; it is
implemented here for completeness and for the microbench explorer.

The prefetch toggle lives on :class:`~repro.engine.session.ExecutionKnobs`;
ROF flips it around the wrapped hybrid pipeline — including the per-worker
sessions of the morsel executor, whose cloned knobs would otherwise lose
the toggle.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict

from ..engine.program import CompiledQuery, ParallelPlan
from ..engine.session import Session
from ..plan.logical import Query
from ..storage.database import Database
from .base import register_strategy
from .emit import emit_rof
from .hybrid import compile_hybrid


@contextmanager
def _prefetching(session: Session):
    previous = session.knobs.ht_prefetch
    session.knobs.ht_prefetch = True
    try:
        yield
    finally:
        session.knobs.ht_prefetch = previous


@register_strategy("rof")
def compile_rof(query: Query, db: Database) -> CompiledQuery:
    """Compile with ROF: hybrid's pipeline + prefetched hash accesses."""
    inner = compile_hybrid(query, db)

    def run(session: Session) -> Dict[str, Any]:
        with _prefetching(session):
            return inner._fn(session)

    parallel = None
    if inner.parallel is not None:
        inner_plan = inner.parallel

        def partial(session, ctx, lo, hi):
            with _prefetching(session):
                return inner_plan.partial(session, ctx, lo, hi)

        setup = None
        if inner_plan.setup is not None:

            def setup(session):
                with _prefetching(session):
                    return inner_plan.setup(session)

        finalize = None
        if inner_plan.finalize is not None:

            def finalize(session, merged, ctx):
                with _prefetching(session):
                    return inner_plan.finalize(session, merged, ctx)

        parallel = ParallelPlan(
            table=inner_plan.table,
            n_rows=inner_plan.n_rows,
            partial=partial,
            setup=setup,
            finalize=finalize,
        )

    return CompiledQuery(
        name=query.name,
        strategy="rof",
        source=emit_rof(query),
        _fn=run,
        parallel=parallel,
    )
