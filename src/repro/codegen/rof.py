"""Relaxed operator fusion (Peloton-style) — paper §II-A3.

ROF stages full selection vectors at pipeline "staging points" and issues
software prefetches before hash-table accesses. Its access *patterns* are
the same as the hybrid strategy's (both are `s_trav_cr`); the differences
are control flow (one always-full ``idx`` vector) and latency hiding on
hash accesses. The paper excluded ROF from its evaluation because its
relative runtimes were the same as or worse than hybrid's; it is
implemented here for completeness and for the microbench explorer.
"""

from __future__ import annotations

from typing import Any, Dict

from ..engine.program import CompiledQuery
from ..engine.session import Session
from ..plan.logical import Query
from ..storage.database import Database
from .base import register_strategy
from .emit import emit_rof
from .hybrid import compile_hybrid


@register_strategy("rof")
def compile_rof(query: Query, db: Database) -> CompiledQuery:
    """Compile with ROF: hybrid's pipeline + prefetched hash accesses."""
    inner = compile_hybrid(query, db)

    def run(session: Session) -> Dict[str, Any]:
        previous = session.ht_prefetch
        session.ht_prefetch = True
        try:
            return inner._fn(session)
        finally:
            session.ht_prefetch = previous

    return CompiledQuery(
        name=query.name, strategy="rof", source=emit_rof(query), _fn=run
    )
