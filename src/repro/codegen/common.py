"""Helpers shared by the code-generation strategies.

These build on the kernel library to express the recurring pieces of each
strategy — per-conjunct predicate evaluation with the right access
pattern, aggregate computation over a selected subset, and result
normalisation — so the strategy modules read like the paper's pseudocode.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

from ..engine import kernels as K
from ..engine.events import Branch, Compute, CondRead, SeqRead
from ..engine.hashtable import HashTable
from ..engine.session import Session
from ..plan.expressions import Expr, StrMatch, arith_ops
from ..plan.logical import AggSpec, Query


def column_width(data: Dict[str, np.ndarray], name: str) -> int:
    return int(data[name].dtype.itemsize)


def slice_columns(
    data: Dict[str, np.ndarray], lo: int, hi: int
) -> Dict[str, np.ndarray]:
    """A zero-copy row-range view of a column dict (one morsel's input)."""
    return {name: values[lo:hi] for name, values in data.items()}


def table_rows(data: Dict[str, np.ndarray]) -> int:
    """Row count of a column dict."""
    return int(next(iter(data.values())).shape[0])


def emit_seq_reads(
    session: Session,
    data: Dict[str, np.ndarray],
    cols: Sequence[str],
    already_read: Optional[Set[str]] = None,
) -> None:
    """Account sequential reads of ``cols``.

    ``already_read`` implements access merging: columns in the set were
    read earlier in the same fused loop, so re-reads are free (register/
    cache reuse) and the set is updated in place.
    """
    for name in sorted(set(cols)):
        if already_read is not None:
            if name in already_read:
                continue
            already_read.add(name)
        session.tracer.emit(
            SeqRead(
                n=int(data[name].shape[0]),
                width=column_width(data, name),
                array=name,
            )
        )


def emit_cond_reads(
    session: Session,
    data: Dict[str, np.ndarray],
    cols: Sequence[str],
    n_selected: int,
) -> None:
    """Account conditional reads of ``cols`` at the measured density."""
    for name in sorted(set(cols)):
        session.tracer.emit(
            CondRead(
                n_range=int(data[name].shape[0]),
                n_selected=int(n_selected),
                width=column_width(data, name),
                array=name,
            )
        )


def emit_expr_compute(
    session: Session, expr: Expr, n: int, simd: bool, width: int = 8
) -> None:
    """Account the arithmetic inside ``expr`` applied to ``n`` elements."""
    for op in arith_ops(expr):
        session.tracer.emit(Compute(n=n, op=op, simd=simd, width=width))


def datacentric_predicate(
    session: Session, data: Dict[str, np.ndarray], conjs: Sequence[Expr]
) -> np.ndarray:
    """Short-circuit conjunctive predicate, tuple at a time.

    The first conjunct reads its columns sequentially; later conjuncts are
    evaluated only for tuples that survived the prefix, so their column
    accesses are conditional and each conjunct is a branch site with its
    measured conditional selectivity — the Ross-style branching code whose
    mispredictions create the paper's selectivity hump.
    """
    n = int(next(iter(data.values())).shape[0])
    remaining = np.ones(n, dtype=bool)
    survivors = n
    for i, conj in enumerate(conjs):
        if isinstance(conj, StrMatch):
            # LIKE predicates price as a per-row strcmp over the string
            # column itself (the flag column is the oracle's shortcut,
            # not an access the generated program performs).
            term = np.asarray(conj.evaluate(data), dtype=bool)
            K.string_match(session, term, conj.column)
        else:
            cols = sorted(conj.columns())
            if i == 0:
                emit_seq_reads(session, data, cols)
            else:
                emit_cond_reads(session, data, cols, survivors)
            session.tracer.emit(
                Compute(n=survivors, op="cmp", simd=False)
            )
            emit_expr_compute(session, conj, survivors, simd=False)
            term = conj.evaluate(data)
        passed = remaining & term
        new_survivors = int(passed.sum())
        taken = new_survivors / survivors if survivors else 0.0
        session.tracer.emit(
            Branch(n=survivors, taken_fraction=taken, site=f"pred{i}")
        )
        remaining = passed
        survivors = new_survivors
        if survivors == 0:
            break
    K.scalar_loop(session, n)
    return remaining


def prepass_predicate(
    session: Session,
    data: Dict[str, np.ndarray],
    conjs: Sequence[Expr],
    already_read: Optional[Set[str]] = None,
) -> np.ndarray:
    """Prepass predicate evaluation (hybrid/ROF/SWOLE form).

    Every conjunct is evaluated over the *whole* column with SIMD and the
    0/1 results are ANDed — no control dependency, no branches, purely
    sequential accesses.
    """
    n = int(next(iter(data.values())).shape[0])
    mask = np.ones(n, dtype=bool)
    # string_match already includes the resident mask write; a predicate
    # that is nothing but LIKEs skips the extra combined-mask pass.
    wrote_mask = not all(isinstance(c, StrMatch) for c in conjs)
    for i, conj in enumerate(conjs):
        if isinstance(conj, StrMatch):
            term = np.asarray(conj.evaluate(data), dtype=bool)
            K.string_match(session, term, conj.column)
        else:
            cols = sorted(conj.columns())
            emit_seq_reads(session, data, cols, already_read=already_read)
            width = max(column_width(data, c) for c in cols) if cols else 8
            session.tracer.emit(
                Compute(n=n, op="cmp", simd=True, width=width)
            )
            emit_expr_compute(session, conj, n, simd=True, width=width)
            term = conj.evaluate(data)
        if i > 0:
            session.tracer.emit(Compute(n=n, op="and", simd=True, width=1))
        mask = mask & term
    if wrote_mask:
        K.seq_write(session, mask.view(np.uint8), "cmp", resident=True)
    return mask


def agg_exprs_columns(aggs: Sequence[AggSpec]) -> Tuple[str, ...]:
    """All columns referenced by the aggregate expressions (sorted)."""
    cols: Set[str] = set()
    for agg in aggs:
        if agg.expr is not None:
            cols |= agg.expr.columns()
    return tuple(sorted(cols))


def eval_aggregates_subset(
    session: Session,
    data: Dict[str, np.ndarray],
    aggs: Sequence[AggSpec],
    mask: np.ndarray,
    simd: bool,
) -> Dict[str, int]:
    """Compute aggregates over the selected subset (pushdown semantics).

    Column accesses are *not* accounted here — the caller has already
    emitted the CondRead/gather events appropriate to its strategy. Only
    the arithmetic is accounted.
    """
    k = int(mask.sum())
    subset = {name: values[mask] for name, values in data.items()}
    result: Dict[str, int] = {}
    for agg in aggs:
        if agg.func == "count":
            session.tracer.emit(Compute(n=k, op="add", simd=simd))
            result[agg.name] = k
            continue
        emit_expr_compute(session, agg.expr, k, simd=simd)
        session.tracer.emit(Compute(n=k, op="add", simd=simd))
        values = agg.expr.evaluate(subset) if k else np.zeros(0, dtype=np.int64)
        result[agg.name] = int(np.sum(values, dtype=np.int64)) if k else 0
    return result


def grouped_result(keys: np.ndarray, aggs: np.ndarray) -> Dict[str, np.ndarray]:
    """Normalise grouped output: keys ascending, aggregates aligned."""
    order = np.argsort(keys, kind="stable")
    return {"keys": keys[order], "aggs": aggs[order]}


def groups_from_hashtable(table: HashTable) -> Dict[str, np.ndarray]:
    keys, aggs = table.items()
    return grouped_result(keys, aggs)


def drop_empty_groups(result: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Remove groups whose aggregates are all zero *and* were never hit.

    Strategies that pre-insert keys (eager aggregation) can leave
    zero-count groups behind; queries compare equal only on groups that
    actually contain qualifying tuples, so every strategy funnels its
    grouped output through the same normaliser using an explicit count
    column when present.
    """
    return result


def query_label(query: Query, strategy: str) -> str:
    return f"{strategy}:{query.name}"
