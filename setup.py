"""Setuptools shim (kept for environments without the wheel package,
where ``python setup.py develop`` is the only editable-install path).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
