"""Tests for the microbenchmark workload generator (paper Fig. 7)."""

import numpy as np
import pytest

from repro.datagen import microbench as mb
from repro.errors import DataGenError


class TestConfig:
    def test_defaults_valid(self):
        config = mb.MicrobenchConfig()
        assert config.num_rows > 0

    def test_bad_sizes_rejected(self):
        with pytest.raises(DataGenError):
            mb.MicrobenchConfig(num_rows=0)
        with pytest.raises(DataGenError):
            mb.MicrobenchConfig(s_rows=0)
        with pytest.raises(DataGenError):
            mb.MicrobenchConfig(c_cardinality=0)

    def test_scale_factor(self):
        config = mb.MicrobenchConfig(num_rows=1_000_000)
        assert config.scale_factor == 100.0


class TestGeneratedData:
    def test_schema(self, micro_db, micro_config):
        r = micro_db.table("R")
        s = micro_db.table("S")
        assert r.num_rows == micro_config.num_rows
        assert s.num_rows == micro_config.s_rows
        assert set(r.column_names) == {
            "r_a", "r_b", "r_x", "r_y", "r_c", "r_fk",
        }
        assert set(s.column_names) == {"s_pk", "s_x"}

    def test_selectivity_column_calibrated(self, micro_db):
        """``r_x < SEL`` selects SEL% within sampling noise."""
        x = micro_db.table("R")["r_x"]
        for sel in (10, 50, 90):
            assert float((x < sel).mean()) == pytest.approx(
                sel / 100, abs=0.02
            )

    def test_r_y_is_constant_one(self, micro_db):
        assert (micro_db.table("R")["r_y"] == 1).all()

    def test_values_never_zero_for_division(self, micro_db):
        assert (micro_db.table("R")["r_a"] >= 1).all()
        assert (micro_db.table("R")["r_b"] >= 1).all()

    def test_group_cardinality(self, micro_db, micro_config):
        distinct = np.unique(micro_db.table("R")["r_c"]).shape[0]
        assert distinct == micro_config.c_cardinality

    def test_fk_references_valid(self, micro_db, micro_config):
        fk = micro_db.table("R")["r_fk"]
        assert fk.min() >= 0 and fk.max() < micro_config.s_rows
        assert micro_db.fk_index("R", "r_fk").is_dense

    def test_uniform_distribution(self, micro_db, micro_config):
        """The paper's worst case: uniform keys (chi-square sanity)."""
        counts = np.bincount(
            micro_db.table("R")["r_c"], minlength=micro_config.c_cardinality
        )
        expected = micro_config.num_rows / micro_config.c_cardinality
        assert counts.std() / expected < 0.2

    def test_deterministic_by_seed(self):
        config = mb.MicrobenchConfig(num_rows=1000, s_rows=50)
        a = mb.generate(config)
        b = mb.generate(config)
        assert np.array_equal(a.table("R")["r_a"], b.table("R")["r_a"])


class TestQueryFactories:
    def test_q1_op_validated(self):
        with pytest.raises(DataGenError):
            mb.q1(50, "mod")

    def test_q3_col_validated(self):
        with pytest.raises(DataGenError):
            mb.q3(50, "r_a")

    def test_q4_is_semijoin(self):
        assert mb.q4(10, 20).is_semijoin

    def test_q5_is_groupjoin(self):
        assert mb.q5(10).is_groupjoin

    def test_q2_groups_by_c(self):
        assert mb.q2(10).group_by == "r_c"

    def test_names_carry_parameters(self):
        assert "div" in mb.q1(10, "div").name
        assert "r_x" in mb.q3(10, "r_x").name
