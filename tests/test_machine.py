"""Tests for the machine model (repro.engine.machine)."""

import pytest

from repro.engine.machine import PAPER_MACHINE, MachineModel, SIMD_EXEMPT_OPS
from repro.errors import CostModelError


class TestLatencies:
    def test_hierarchy_ordering(self):
        m = PAPER_MACHINE
        assert m.lat_l1 < m.lat_l2 < m.lat_llc < m.lat_mem
        assert m.seq_line_cycles < m.lat_llc

    def test_random_latency_monotone_in_size(self):
        m = PAPER_MACHINE
        sizes = [1024, 64 * 1024, 4 * 1024 * 1024, 256 * 1024 * 1024]
        latencies = [m.random_latency(s) for s in sizes]
        assert latencies == sorted(latencies)

    def test_tiny_structure_is_l1(self):
        assert PAPER_MACHINE.random_latency(1024) == PAPER_MACHINE.lat_l1

    def test_huge_structure_approaches_memory(self):
        lat = PAPER_MACHINE.random_latency(100 * 1024 * 1024 * 1024)
        assert lat > 0.9 * PAPER_MACHINE.lat_mem

    def test_zero_structure(self):
        assert PAPER_MACHINE.random_latency(0) == PAPER_MACHINE.lat_l1

    def test_negative_rejected(self):
        with pytest.raises(CostModelError):
            PAPER_MACHINE.random_latency(-1)


class TestOps:
    def test_division_expensive(self):
        m = PAPER_MACHINE
        assert m.op_cost("div") > 10 * m.op_cost("mul")

    def test_unknown_op_rejected(self):
        with pytest.raises(CostModelError):
            PAPER_MACHINE.op_cost("frobnicate")

    def test_simd_lanes_by_width(self):
        m = PAPER_MACHINE
        assert m.simd_lanes(1) == 32
        assert m.simd_lanes(4) == 8
        assert m.simd_lanes(8) == 4

    def test_simd_lanes_bad_width(self):
        with pytest.raises(CostModelError):
            PAPER_MACHINE.simd_lanes(0)

    def test_simd_exempt_ops_do_not_speed_up(self):
        m = PAPER_MACHINE
        for op in SIMD_EXEMPT_OPS:
            assert m.simd_cost(op, 8) == m.op_cost(op)

    def test_simd_speeds_up_regular_ops(self):
        m = PAPER_MACHINE
        assert m.simd_cost("mul", 8) == m.op_cost("mul") / 4


class TestScaling:
    def test_caches_shrink(self):
        scaled = PAPER_MACHINE.scaled(100)
        assert scaled.llc_bytes == PAPER_MACHINE.llc_bytes // 100
        assert scaled.l1_bytes < PAPER_MACHINE.l1_bytes

    def test_latencies_unchanged(self):
        scaled = PAPER_MACHINE.scaled(50)
        assert scaled.lat_mem == PAPER_MACHINE.lat_mem
        assert scaled.mispredict_penalty == PAPER_MACHINE.mispredict_penalty

    def test_floor_prevents_degenerate_caches(self):
        scaled = PAPER_MACHINE.scaled(10**9)
        assert scaled.l1_bytes >= 4 * scaled.line_bytes

    def test_bad_factor_rejected(self):
        with pytest.raises(CostModelError):
            PAPER_MACHINE.scaled(0)

    def test_cycles_to_seconds(self):
        m = MachineModel(ghz=2.0)
        assert m.cycles_to_seconds(2e9) == pytest.approx(1.0)
