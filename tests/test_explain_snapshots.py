"""Golden explain() snapshots, one per pipeline query x strategy.

The staged lowering pipeline's ``explain()`` rendering (logical plan,
pass notes with cost estimates, physical plan) is committed under
``tests/snapshots/explain/`` and diffed here, so any change to the
planner's decisions — a pass flipping from applied to declined, an
access mode changing, a pipeline reordering — shows up in review as a
readable snapshot diff instead of silent plan drift.

Snapshots are rendered on the shared ``tpch_db`` fixture (SF 0.002,
deterministic generator) and the unscaled paper machine. To regenerate
after an intentional planner change::

    REPRO_UPDATE_SNAPSHOTS=1 PYTHONPATH=src \
        python -m pytest tests/test_explain_snapshots.py -q
"""

import os
import pathlib

import pytest

from repro.tpch import PIPELINE_QUERIES, STRATEGIES, compile_tpch

SNAPSHOT_DIR = pathlib.Path(__file__).parent / "snapshots" / "explain"

_UPDATE = bool(os.environ.get("REPRO_UPDATE_SNAPSHOTS"))


@pytest.mark.parametrize("name", PIPELINE_QUERIES)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_explain_matches_snapshot(tpch_db, name, strategy):
    rendered = compile_tpch(name, strategy, tpch_db).notes["explain"]
    assert rendered.endswith("\n") or "\n" in rendered
    path = SNAPSHOT_DIR / f"{name}_{strategy}.txt"
    if _UPDATE:
        SNAPSHOT_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered + "\n")
        return
    if not path.exists():
        pytest.fail(
            f"missing snapshot {path}; regenerate with "
            "REPRO_UPDATE_SNAPSHOTS=1"
        )
    expected = path.read_text().rstrip("\n")
    assert rendered.rstrip("\n") == expected, (
        f"explain() drifted from {path.name}; if the plan change is "
        "intentional, regenerate with REPRO_UPDATE_SNAPSHOTS=1"
    )


def test_snapshot_dir_has_no_strays():
    """Every committed snapshot corresponds to a live query/strategy."""
    expected = {
        f"{name}_{strategy}.txt"
        for name in PIPELINE_QUERIES
        for strategy in STRATEGIES
    }
    actual = {p.name for p in SNAPSHOT_DIR.glob("*.txt")}
    assert actual == expected
