"""Tests for event pricing and the tracer (repro.engine.costing).

These pin down the cost-model invariants that the paper's argument rests
on: sequential < conditional < random per element, the misprediction hump
at 50 %, density-dependent conditional reads, hot-entry behaviour for key
masking, and the stream/compute overlap that realises the paper's
``max(comp, read)`` structure.
"""

import pytest

from repro.engine.costing import CostAccountant, Tracer
from repro.engine.events import (
    Branch,
    CondRead,
    Compute,
    RandomAccess,
    SeqRead,
    SeqWrite,
    TupleOverhead,
)
from repro.engine.machine import PAPER_MACHINE
from repro.errors import CostModelError

ACC = CostAccountant(PAPER_MACHINE)
N = 1_000_000


def per_element(cycles: float, n: int = N) -> float:
    return cycles / n


class TestSeqAccess:
    def test_linear_in_rows(self):
        one = ACC.seq_read(SeqRead(n=N, width=8))
        two = ACC.seq_read(SeqRead(n=2 * N, width=8))
        assert two == pytest.approx(2 * one, rel=0.01)

    def test_linear_in_width(self):
        narrow = ACC.seq_read(SeqRead(n=N, width=1))
        wide = ACC.seq_read(SeqRead(n=N, width=8))
        assert wide == pytest.approx(8 * narrow, rel=0.01)

    def test_resident_intermediate_cheaper(self):
        cold = ACC.seq_write(SeqWrite(n=N, width=8))
        resident = ACC.seq_write(SeqWrite(n=N, width=8, array_bytes=8192))
        assert resident < cold

    def test_zero_rows_free(self):
        assert ACC.seq_read(SeqRead(n=0, width=8)) == 0.0


class TestCondRead:
    def test_monotone_in_selected(self):
        costs = [
            ACC.cond_read(CondRead(n_range=N, n_selected=k, width=8))
            for k in (N // 100, N // 10, N // 2, N)
        ]
        assert costs == sorted(costs)

    def test_dense_approaches_sequential(self):
        cond = ACC.cond_read(CondRead(n_range=N, n_selected=N, width=8))
        seq = ACC.seq_read(SeqRead(n=N, width=8))
        assert cond == pytest.approx(seq, rel=0.05)

    def test_sparse_costs_more_per_selected_element(self):
        sparse = ACC.cond_read(CondRead(n_range=N, n_selected=N // 100, width=8))
        dense = ACC.cond_read(CondRead(n_range=N, n_selected=N, width=8))
        assert sparse / (N // 100) > dense / N

    def test_selected_beyond_range_rejected(self):
        with pytest.raises(CostModelError):
            ACC.cond_read(CondRead(n_range=10, n_selected=11, width=8))

    def test_zero_selected_free(self):
        assert ACC.cond_read(CondRead(n_range=N, n_selected=0, width=8)) == 0


class TestRandomAccess:
    def test_monotone_in_structure_size(self):
        costs = [
            ACC.random_access(RandomAccess(n=N, struct_bytes=s))
            for s in (1024, 10**6, 10**8, 10**10)
        ]
        assert costs == sorted(costs)

    def test_random_worse_than_sequential_per_element(self):
        random = ACC.random_access(
            RandomAccess(n=N, struct_bytes=10**9)
        )
        seq = ACC.seq_read(SeqRead(n=N, width=8))
        assert random > seq

    def test_hot_entries_cheap_when_predicate_fails_often(self):
        # key masking: 95% of accesses hit the throwaway entry
        mostly_hot = ACC.random_access(
            RandomAccess(n=N, struct_bytes=10**9, hot_fraction=0.95)
        )
        all_cold = ACC.random_access(
            RandomAccess(n=N, struct_bytes=10**9, hot_fraction=0.0)
        )
        assert mostly_hot < 0.3 * all_cold

    def test_hot_entry_degrades_with_pollution(self):
        # more cold lookups between hot touches -> hot entry evicted
        light = ACC._hot_latency(
            RandomAccess(n=N, struct_bytes=10**9, hot_fraction=0.9)
        )
        heavy = ACC._hot_latency(
            RandomAccess(n=N, struct_bytes=10**9, hot_fraction=0.1)
        )
        assert heavy > light

    def test_prefetch_discount(self):
        plain = ACC.random_access(RandomAccess(n=N, struct_bytes=10**9))
        prefetched = ACC.random_access(
            RandomAccess(n=N, struct_bytes=10**9, prefetched=True)
        )
        assert prefetched < plain

    def test_op_cycles_added(self):
        base = ACC.random_access(RandomAccess(n=N, struct_bytes=1024))
        extra = ACC.random_access(
            RandomAccess(n=N, struct_bytes=1024, op_cycles=5.0)
        )
        assert extra == pytest.approx(base + 5.0 * N)

    def test_bad_hot_fraction(self):
        with pytest.raises(CostModelError):
            ACC.random_access(
                RandomAccess(n=N, struct_bytes=10, hot_fraction=2.0)
            )


class TestBranch:
    def test_hump_peaks_at_half(self):
        costs = {
            p: ACC.branch(Branch(n=N, taken_fraction=p))
            for p in (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
        }
        assert costs[0.5] == max(costs.values())
        assert costs[0.0] == 0.0
        assert costs[1.0] == 0.0

    def test_symmetric(self):
        lo = ACC.branch(Branch(n=N, taken_fraction=0.2))
        hi = ACC.branch(Branch(n=N, taken_fraction=0.8))
        assert lo == pytest.approx(hi)


class TestCompute:
    def test_simd_speedup(self):
        scalar = ACC.compute(Compute(n=N, op="mul", simd=False, width=8))
        simd = ACC.compute(Compute(n=N, op="mul", simd=True, width=8))
        assert simd == pytest.approx(scalar / 4)

    def test_division_not_vectorised(self):
        scalar = ACC.compute(Compute(n=N, op="div", simd=False))
        simd = ACC.compute(Compute(n=N, op="div", simd=True))
        assert simd == scalar

    def test_tuple_overhead(self):
        cost = ACC.tuple_overhead(TupleOverhead(n=N, cycles_each=2.0))
        assert cost == 2.0 * N

    def test_unknown_event_rejected(self):
        class Weird:
            pass

        with pytest.raises(CostModelError):
            ACC.cycles(Weird())


class TestTracerOverlap:
    def test_overlap_takes_max_of_stream_and_compute(self):
        tracer = Tracer(PAPER_MACHINE)
        stream = SeqRead(n=N, width=8)
        comp = Compute(n=N, op="div", simd=False)
        stream_cost = ACC.seq_read(stream)
        comp_cost = ACC.compute(comp)
        with tracer.overlap():
            tracer.emit(stream)
            tracer.emit(comp)
        assert tracer.report.total_cycles == pytest.approx(
            max(stream_cost, comp_cost)
        )

    def test_serial_events_not_overlapped(self):
        tracer = Tracer(PAPER_MACHINE)
        random = RandomAccess(n=N, struct_bytes=10**9)
        random_cost = ACC.random_access(random)
        with tracer.overlap():
            tracer.emit(SeqRead(n=N, width=8))
            tracer.emit(random)
        seq_cost = ACC.seq_read(SeqRead(n=N, width=8))
        assert tracer.report.total_cycles == pytest.approx(
            seq_cost + random_cost
        )

    def test_nested_overlap_is_inert(self):
        tracer = Tracer(PAPER_MACHINE)
        with tracer.overlap():
            with tracer.overlap():
                tracer.emit(SeqRead(n=N, width=8))
            tracer.emit(Compute(n=N, op="div", simd=False))
        expected = max(
            ACC.seq_read(SeqRead(n=N, width=8)),
            ACC.compute(Compute(n=N, op="div", simd=False)),
        )
        assert tracer.report.total_cycles == pytest.approx(expected)

    def test_outside_overlap_costs_add(self):
        tracer = Tracer(PAPER_MACHINE)
        tracer.emit(SeqRead(n=N, width=8))
        tracer.emit(Compute(n=N, op="div", simd=False))
        expected = ACC.seq_read(SeqRead(n=N, width=8)) + ACC.compute(
            Compute(n=N, op="div", simd=False)
        )
        assert tracer.report.total_cycles == pytest.approx(expected)

    def test_kernel_attribution(self):
        tracer = Tracer(PAPER_MACHINE)
        with tracer.kernel("scan"):
            tracer.emit(SeqRead(n=N, width=8))
        assert "scan" in tracer.report.by_kernel
        assert tracer.report.by_kind["SeqRead"] > 0

    def test_breakdown_renders(self):
        tracer = Tracer(PAPER_MACHINE)
        with tracer.kernel("scan"):
            tracer.emit(SeqRead(n=N, width=8))
        text = tracer.report.breakdown()
        assert "scan" in text and "cycles" in text


class TestAccessPatternOrdering:
    def test_paper_premise_seq_beats_cond_beats_random(self):
        """The paper's core premise, as model invariants: per element,
        sequential <= conditional (mid density) <= random (big struct)."""
        seq = per_element(ACC.seq_read(SeqRead(n=N, width=8)))
        cond = per_element(
            ACC.cond_read(CondRead(n_range=N, n_selected=N // 2, width=8)),
            N // 2,
        )
        random = per_element(
            ACC.random_access(RandomAccess(n=N, struct_bytes=10**10))
        )
        assert seq <= cond <= random
