"""Tests for foreign-key offset indexes (repro.storage.fkindex)."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.column import int_column
from repro.storage.fkindex import ForeignKeyIndex
from repro.storage.table import make_table


def _tables(pk_values, fk_values):
    referenced = make_table("dim", [int_column("pk", pk_values)])
    referencing = make_table("fact", [int_column("fk", fk_values)])
    return referencing, referenced


class TestDenseKeys:
    def test_zero_based_dense(self):
        fact, dim = _tables([0, 1, 2, 3], [2, 0, 3])
        index = ForeignKeyIndex(fact, "fk", dim, "pk")
        assert index.is_dense
        assert index.offsets.tolist() == [2, 0, 3]

    def test_one_based_dense(self):
        fact, dim = _tables([1, 2, 3], [3, 1])
        index = ForeignKeyIndex(fact, "fk", dim, "pk")
        assert index.is_dense
        assert index.offsets.tolist() == [2, 0]

    def test_offsets_read_only(self):
        fact, dim = _tables([0, 1], [1])
        index = ForeignKeyIndex(fact, "fk", dim, "pk")
        with pytest.raises(ValueError):
            index.offsets[0] = 0


class TestGeneralKeys:
    def test_unsorted_primary_keys(self):
        fact, dim = _tables([30, 10, 20], [10, 30, 20, 10])
        index = ForeignKeyIndex(fact, "fk", dim, "pk")
        assert not index.is_dense
        assert index.offsets.tolist() == [1, 0, 2, 1]

    def test_offsets_resolve_to_matching_rows(self, rng):
        pk = rng.permutation(np.arange(0, 2000, 2))  # even sparse keys
        fk = rng.choice(pk, size=500)
        fact, dim = _tables(pk, fk)
        index = ForeignKeyIndex(fact, "fk", dim, "pk")
        assert np.array_equal(pk[index.offsets], fk)

    def test_violation_detected(self):
        fact, dim = _tables([0, 1, 2], [5])
        with pytest.raises(StorageError):
            ForeignKeyIndex(fact, "fk", dim, "pk")

    def test_violation_detected_for_sparse_keys(self):
        fact, dim = _tables([10, 20, 30], [15])
        with pytest.raises(StorageError):
            ForeignKeyIndex(fact, "fk", dim, "pk")


class TestMetadata:
    def test_len_and_nbytes(self):
        fact, dim = _tables([0, 1, 2], [1, 1, 2, 0])
        index = ForeignKeyIndex(fact, "fk", dim, "pk")
        assert len(index) == 4
        assert index.nbytes == 4 * 8

    def test_describe_mentions_kind(self):
        fact, dim = _tables([0, 1], [1])
        assert "dense" in ForeignKeyIndex(fact, "fk", dim, "pk").describe()
