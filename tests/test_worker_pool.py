"""Worker pool lifecycle, cancellation, and determinism.

The pool's contract: threads start lazily and are reused across
queries (no per-query spawn), ``shutdown()`` is idempotent and the
context manager tears threads down, a batch's first morsel failure
cancels the remaining morsels and re-raises naming the morsel, and
pooled results/simulated cycles are bit-identical to the spawn path.
"""

import threading

import pytest

from repro.datagen import microbench as mb
from repro.engine import Engine, MorselBatch, WorkerPool
from repro.engine.pool import drain_with_ephemeral_threads
from repro.engine.program import results_equal
from repro.engine.session import ExecutionKnobs, Session
from repro.errors import ExecutionError


def pool_thread_ids():
    """Idents of live repro worker-pool threads.

    Comparisons below are delta-based: other tests (e.g. module-scoped
    engines in test_executor) may legitimately leave pool threads
    running until interpreter exit.
    """
    return {
        t.ident
        for t in threading.enumerate()
        if t.name.startswith("repro-pool-")
    }


class RecordingPlan:
    """A fake parallel plan: records per-morsel knob state, can fail."""

    def __init__(self, fail_at=()):
        self.fail_at = set(fail_at)
        self.seen_prefetch = {}
        self.lock = threading.Lock()

    def partial(self, session, ctx, lo, hi):
        with self.lock:
            self.seen_prefetch[(lo, hi)] = session.knobs.ht_prefetch
        if lo in self.fail_at:
            raise ValueError(f"injected failure at {lo}")
        # Flip a knob mid-morsel, as ROF does with ht_prefetch; the
        # batch must re-sync from the template before the next morsel.
        session.knobs.ht_prefetch = True
        return {"rows": hi - lo}


def make_batch(n_morsels=8, workers=2, fail_at=(), knobs=None):
    template = Session(knobs=knobs)
    plan = RecordingPlan(fail_at=fail_at)
    morsels = [(i * 100, (i + 1) * 100) for i in range(n_morsels)]
    return MorselBatch(template, plan, None, morsels, "test", workers), plan


class TestPoolLifecycle:
    def test_threads_start_lazily_and_are_reused(self, micro_db):
        before = pool_thread_ids()
        with Engine(
            db=micro_db,
            workers=4,
            knobs=ExecutionKnobs(morsel_rows=4096),
        ) as engine:
            assert not engine.pool.started
            assert pool_thread_ids() == before
            engine.execute(mb.q1(30), "swole", workers=4)
            first = pool_thread_ids() - before
            assert len(first) >= 4
            engine.execute(mb.q2(30), "swole", workers=4)
            second = pool_thread_ids() - before
            assert second == first  # reused, not respawned

    def test_shutdown_idempotent_and_joins_threads(self, micro_db):
        before = pool_thread_ids()
        engine = Engine(
            db=micro_db,
            workers=2,
            knobs=ExecutionKnobs(morsel_rows=4096),
        )
        engine.execute(mb.q1(30), "swole", workers=2)
        assert pool_thread_ids() - before
        engine.shutdown()
        assert pool_thread_ids() == before
        engine.shutdown()  # second call is a no-op
        # the pool restarts lazily if the engine is used again
        result = engine.execute(mb.q1(30), "swole", workers=2)
        assert result.metrics.pooled
        engine.shutdown()
        assert pool_thread_ids() == before

    def test_context_manager_exit_stops_threads(self, micro_db):
        before = pool_thread_ids()
        with Engine(
            db=micro_db,
            workers=2,
            knobs=ExecutionKnobs(morsel_rows=4096),
        ) as engine:
            engine.execute(mb.q1(30), "swole", workers=2)
            assert pool_thread_ids() - before
        assert pool_thread_ids() == before

    def test_no_thread_leak_across_queries(self, micro_db):
        with Engine(db=micro_db, workers=4) as engine:
            engine.execute(mb.q1(30), "swole", workers=4)
            baseline = threading.active_count()
            for _ in range(10):
                engine.execute(mb.q1(30), "swole", workers=4)
            assert threading.active_count() == baseline

    def test_pool_grows_for_larger_worker_requests(self, micro_db):
        before = pool_thread_ids()
        with Engine(
            db=micro_db,
            workers=2,
            knobs=ExecutionKnobs(morsel_rows=4096),
        ) as engine:
            serial = engine.execute(mb.q2(40), "swole", workers=1)
            wide = engine.execute(mb.q2(40), "swole", workers=6)
            assert len(pool_thread_ids() - before) >= 6
            assert results_equal(serial, wide)

    def test_pool_rejects_bad_worker_count(self):
        with pytest.raises(ExecutionError):
            WorkerPool(workers=0)


class TestLifecycleRaces:
    def test_concurrent_ensure_and_shutdown_never_wedge(self):
        # Regression for the register/unregister race: ensure_started
        # and shutdown hammered from two threads must neither deadlock
        # nor leave the atexit hook pointing at dead threads. Bounded
        # iterations keep the test deterministic-fast; the join below
        # is the liveness assertion.
        pool = WorkerPool(workers=2)
        stop = threading.Event()
        errors = []

        def hammer(action):
            try:
                while not stop.is_set():
                    action()
            except Exception as exc:  # any raise is the finding
                errors.append(exc)

        threads = [
            threading.Thread(
                target=hammer, args=(pool.ensure_started,), daemon=True
            ),
            threading.Thread(
                target=hammer, args=(pool.shutdown,), daemon=True
            ),
        ]
        for t in threads:
            t.start()
        import time

        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
            assert not t.is_alive(), "lifecycle hammer deadlocked"
        assert not errors
        # whatever state the race ended in, the pool still works...
        batch, _ = make_batch(n_morsels=4, workers=2)
        values, reports, _ = pool.run(
            batch.template, batch.plan, None, batch.morsels, "test", 2
        )
        assert len(values) == 4
        # ...and shuts down cleanly.
        pool.shutdown()
        assert not pool.started


class TestCancellation:
    def test_failure_cancels_and_names_morsel(self):
        batch, _ = make_batch(n_morsels=16, workers=1, fail_at={300})
        with pytest.raises(ExecutionError, match=r"morsel 3 .*test"):
            drain_with_ephemeral_threads(batch)
        assert batch.cancelled
        # cancelled before draining the cursor: later morsels never ran
        assert batch.values[-1] is None

    def test_failure_preserves_cause(self):
        batch, _ = make_batch(n_morsels=4, workers=2, fail_at={0})
        with pytest.raises(ExecutionError) as info:
            drain_with_ephemeral_threads(batch)
        assert isinstance(info.value.__cause__, ValueError)

    def test_pool_survives_a_failed_batch(self):
        with WorkerPool(workers=2) as pool:
            batch, _ = make_batch(n_morsels=8, workers=2, fail_at={400})
            with pytest.raises(ExecutionError):
                pool.run(
                    batch.template, batch.plan, None, batch.morsels,
                    "test", 2,
                )
            ok, _ = make_batch(n_morsels=8, workers=2)
            values, reports, _ = pool.run(
                ok.template, ok.plan, None, ok.morsels, "test", 2
            )
            assert len(values) == len(reports) == 8


class TestKnobIsolation:
    def test_knobs_resync_between_morsels(self):
        # the plan flips ht_prefetch every morsel; each morsel must
        # still observe the template's value
        with WorkerPool(workers=2) as pool:
            batch, plan = make_batch(n_morsels=8, workers=2)
            pool.run(
                batch.template, batch.plan, None, batch.morsels, "test", 2
            )
            assert plan.seen_prefetch
            assert not any(plan.seen_prefetch.values())

    def test_template_knobs_propagate(self):
        knobs = ExecutionKnobs(ht_prefetch=True)
        batch, plan = make_batch(n_morsels=4, workers=2, knobs=knobs)
        drain_with_ephemeral_threads(batch)
        assert all(plan.seen_prefetch.values())


class TestDeterminism:
    def test_pooled_matches_spawned_bit_for_bit(self, micro_db):
        knobs = ExecutionKnobs(morsel_rows=4096)
        pooled_engine = Engine(db=micro_db, workers=4, knobs=knobs)
        spawn_engine = Engine(
            db=micro_db, workers=4, use_pool=False, knobs=knobs
        )
        try:
            for query in (mb.q1(30, "div"), mb.q2(40), mb.q4(50, 50)):
                pooled = pooled_engine.execute(query, "swole", workers=4)
                spawned = spawn_engine.execute(query, "swole", workers=4)
                assert results_equal(pooled, spawned)
                assert pooled.metrics.pooled
                assert not spawned.metrics.pooled
                assert (
                    pooled.metrics.total_cycles
                    == spawned.metrics.total_cycles
                )
                assert (
                    pooled.metrics.critical_path_cycles
                    == spawned.metrics.critical_path_cycles
                )
        finally:
            pooled_engine.shutdown()

    def test_repeated_pooled_runs_stable(self, micro_db):
        with Engine(db=micro_db, workers=4) as engine:
            first = engine.execute(mb.q1(30), "swole", workers=4)
            for _ in range(3):
                again = engine.execute(mb.q1(30), "swole", workers=4)
                assert results_equal(first, again)
                assert (
                    again.metrics.total_cycles
                    == first.metrics.total_cycles
                )
