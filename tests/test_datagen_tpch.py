"""Tests for the TPC-H generator: cardinalities, integrity, value domains."""

import numpy as np
import pytest

from repro.datagen import tpch
from repro.errors import DataGenError


class TestConfig:
    def test_cardinality_ratios(self):
        config = tpch.TpchConfig(scale_factor=0.1)
        assert config.customers == 15_000
        assert config.suppliers == 1_000
        assert config.parts == 20_000
        assert config.orders == 150_000

    def test_bad_scale_rejected(self):
        with pytest.raises(DataGenError):
            tpch.TpchConfig(scale_factor=0)

    def test_machine_scale_anchored_to_sf10(self):
        assert tpch.TpchConfig(scale_factor=10).machine_scale == 1.0
        assert tpch.TpchConfig(scale_factor=0.01).machine_scale == 1000.0


class TestCardinalities:
    def test_fixed_tables(self, tpch_db):
        assert tpch_db.table("region").num_rows == 5
        assert tpch_db.table("nation").num_rows == 25

    def test_lineitem_about_four_per_order(self, tpch_db, tpch_config):
        ratio = tpch_db.table("lineitem").num_rows / tpch_config.orders
        assert 3.5 <= ratio <= 4.5


class TestReferentialIntegrity:
    @pytest.mark.parametrize(
        "table,column",
        [
            ("nation", "n_regionkey"),
            ("supplier", "s_nationkey"),
            ("customer", "c_nationkey"),
            ("orders", "o_custkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_partkey"),
            ("lineitem", "l_suppkey"),
        ],
    )
    def test_fk_indexes_exist(self, tpch_db, table, column):
        index = tpch_db.fk_index(table, column)
        assert len(index) == tpch_db.table(table).num_rows

    def test_lineitem_clustered_by_orderkey(self, tpch_db):
        """Lineitem rows are generated in order-key order — the property
        the Q4 bitmap build's sequential write pattern relies on."""
        orderkeys = tpch_db.table("lineitem")["l_orderkey"]
        assert (np.diff(orderkeys.astype(np.int64)) >= 0).all()


class TestValueDomains:
    def test_dates_in_spec_range(self, tpch_db):
        orders = tpch_db.table("orders")["o_orderdate"]
        assert orders.min() >= tpch.DATE_1992_01_01
        assert orders.max() <= tpch.DATE_1998_08_02

    def test_date_relationships(self, tpch_db):
        line = tpch_db.table("lineitem")
        assert (line["l_receiptdate"] > line["l_shipdate"]).all()

    def test_quantity_range(self, tpch_db):
        qty = tpch_db.table("lineitem")["l_quantity"]
        assert qty.min() >= 1 and qty.max() <= 50

    def test_discount_and_tax_ranges(self, tpch_db):
        line = tpch_db.table("lineitem")
        assert 0 <= line["l_discount"].min() <= line["l_discount"].max() <= 10
        assert 0 <= line["l_tax"].min() <= line["l_tax"].max() <= 8

    def test_extendedprice_positive_fixed_point(self, tpch_db):
        price = tpch_db.table("lineitem").column("l_extendedprice")
        assert price.scale == 2
        assert (price.values > 0).all()

    def test_q13_predicate_rate(self, tpch_db):
        special = tpch_db.table("orders")["o_comment_special"]
        assert float(special.mean()) == pytest.approx(0.02, abs=0.02)

    def test_q1_cutoff_selects_most_rows(self, tpch_db):
        shipdate = tpch_db.table("lineitem")["l_shipdate"]
        assert float((shipdate <= 10471).mean()) > 0.9


class TestDictionaries:
    def test_shipmodes(self, tpch_db):
        col = tpch_db.table("lineitem").column("l_shipmode")
        assert set(col.dictionary) == set(tpch.SHIPMODES)

    def test_q19_constants_exist(self, tpch_db):
        part = tpch_db.table("part")
        for brand in ("Brand#12", "Brand#23", "Brand#34"):
            part.column("p_brand").code_for(brand)
        for container in ("SM CASE", "MED BAG", "LG PKG"):
            part.column("p_container").code_for(container)

    def test_promo_types_exist(self, tpch_db):
        p_type = tpch_db.table("part").column("p_type")
        assert any(t.startswith("PROMO") for t in p_type.dictionary)

    def test_mktsegments(self, tpch_db):
        col = tpch_db.table("customer").column("c_mktsegment")
        assert "BUILDING" in col.dictionary

    def test_determinism(self, tpch_config):
        a = tpch.generate(tpch_config)
        b = tpch.generate(tpch_config)
        assert np.array_equal(
            a.table("lineitem")["l_extendedprice"],
            b.table("lineitem")["l_extendedprice"],
        )
