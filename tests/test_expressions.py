"""Tests for the expression IR (repro.plan.expressions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.plan.expressions import (
    And,
    Arith,
    Col,
    Compare,
    Const,
    Or,
    arith_ops,
    col_refs,
    conjuncts,
)


@pytest.fixture()
def data(rng):
    return {
        "a": rng.integers(1, 100, 500).astype(np.int8),
        "b": rng.integers(1, 100, 500).astype(np.int8),
        "x": rng.integers(0, 100, 500).astype(np.int32),
    }


class TestBuilding:
    def test_operator_sugar(self):
        expr = Col("x") < Const(13)
        assert isinstance(expr, Compare) and expr.op == "<"

    def test_eq_method(self):
        expr = Col("x").eq(1)
        assert expr.op == "==" and expr.right == Const(1)

    def test_int_lifting(self):
        expr = Col("a") * 3
        assert expr.right == Const(3)

    def test_bad_operand_rejected(self):
        with pytest.raises(PlanError):
            Col("a") * "nope"

    def test_bad_compare_op_rejected(self):
        with pytest.raises(PlanError):
            Compare(Col("a"), "<>", Const(1))

    def test_bad_arith_op_rejected(self):
        with pytest.raises(PlanError):
            Arith("mod", Col("a"), Const(2))

    def test_empty_and_rejected(self):
        with pytest.raises(PlanError):
            And([])


class TestEvaluation:
    def test_compare(self, data):
        out = (Col("x") < Const(50)).evaluate(data)
        assert np.array_equal(out, data["x"] < 50)

    def test_and_or(self, data):
        expr = And([Col("x") < Const(50), Col("a") > Const(10)])
        expected = (data["x"] < 50) & (data["a"] > 10)
        assert np.array_equal(expr.evaluate(data), expected)
        expr = Or([Col("x") < Const(10), Col("x") > Const(90)])
        expected = (data["x"] < 10) | (data["x"] > 90)
        assert np.array_equal(expr.evaluate(data), expected)

    def test_arith_upcasts_to_int64(self, data):
        out = (Col("a") * Col("b")).evaluate(data)
        assert out.dtype == np.int64
        assert np.array_equal(
            out, data["a"].astype(np.int64) * data["b"].astype(np.int64)
        )

    def test_division_truncates(self, data):
        out = (Col("a") / Col("b")).evaluate(data)
        expected = np.floor_divide(
            data["a"].astype(np.int64), data["b"].astype(np.int64)
        )
        assert np.array_equal(out, expected)

    def test_division_by_zero_rejected(self):
        with pytest.raises(PlanError):
            (Col("a") / Const(0)).evaluate({"a": np.asarray([1])})

    def test_unbound_column_rejected(self):
        with pytest.raises(PlanError):
            Col("nope").evaluate({"a": np.asarray([1])})


class TestIntrospection:
    def test_columns(self):
        expr = And([Col("x") < Const(1), Col("a") * Col("x") > Const(2)])
        assert expr.columns() == frozenset({"x", "a"})

    def test_col_refs_counts_repeats(self):
        expr = Col("x") * Col("x")
        assert col_refs(expr) == ("x", "x")

    def test_col_refs_none(self):
        assert col_refs(None) == ()

    def test_conjuncts_splits_top_level_and(self):
        terms = conjuncts(And([Col("a") < Const(1), Col("b") < Const(2)]))
        assert len(terms) == 2

    def test_conjuncts_single_term(self):
        assert len(conjuncts(Col("a") < Const(1))) == 1
        assert conjuncts(None) == ()

    def test_arith_ops_flattened(self):
        expr = (Col("a") * Col("b")) + Col("x")
        assert sorted(arith_ops(expr)) == ["add", "mul"]

    def test_arith_ops_inside_compare(self):
        expr = (Col("a") / Col("b")) < Const(3)
        assert arith_ops(expr) == ("div",)


class TestToC:
    def test_compare(self):
        assert (Col("x") < Const(13)).to_c() == "x[i] < 13"

    def test_and(self):
        expr = And([Col("x") < Const(13), Col("y").eq(1)])
        assert expr.to_c() == "x[i] < 13 && y[i] == 1"

    def test_arith_parenthesised(self):
        assert (Col("a") * Col("b")).to_c() == "(a[i] * b[i])"


@given(
    st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=60),
    st.integers(min_value=0, max_value=100),
)
@settings(max_examples=50, deadline=None)
def test_predicate_evaluation_matches_numpy(values, cutoff):
    data = {"x": np.asarray(values, dtype=np.int32)}
    expr = Col("x") < Const(cutoff)
    assert np.array_equal(expr.evaluate(data), data["x"] < cutoff)


@given(
    st.lists(st.integers(min_value=1, max_value=127), min_size=1, max_size=60)
)
@settings(max_examples=50, deadline=None)
def test_product_never_overflows_narrow_storage(values):
    """int8 storage, int64 arithmetic: products are exact."""
    data = {"a": np.asarray(values, dtype=np.int8)}
    out = (Col("a") * Col("a")).evaluate(data)
    assert out.tolist() == [v * v for v in values]
