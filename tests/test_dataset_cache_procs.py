"""Cross-process dataset-cache safety.

Two processes missing on the same fingerprint must coordinate through
the per-entry lock file: one generates, the other waits and loads the
winner's entry from disk — and either way the entry only ever appears
via an atomic rename, so a reader never sees a partial entry. Stale
locks (a crashed holder) are broken; an unobtainable lock degrades to
duplicated generation work, never corruption.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.datagen.cache as cache_mod
from repro.datagen import microbench as mb
from repro.datagen.cache import DatasetCache, dataset_fingerprint

CONFIG = "MicrobenchConfig(num_rows=4_000, s_rows=100, c_cardinality=8)"

LOADER = f"""
import sys
from repro.datagen import microbench as mb
from repro.datagen.cache import DatasetCache

cache = DatasetCache(cache_dir=sys.argv[1])
db = cache.load("microbench", mb.{CONFIG})
checksum = int(db.table("R").column("r_a").values.sum())
print(cache.last_source, checksum)
"""


def run_loaders(cache_dir: Path, count: int) -> list:
    """Launch ``count`` loader processes at once; return (source,
    checksum) pairs."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parent.parent / "src"
    )
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", LOADER, str(cache_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        for _ in range(count)
    ]
    results = []
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        source, checksum = out.split()
        results.append((source, int(checksum)))
    return results


class TestTwoProcessRace:
    def test_concurrent_first_loads_share_one_entry(self, tmp_path):
        cache_dir = tmp_path / "cache"
        results = run_loaders(cache_dir, 2)

        # Identical answers regardless of who generated.
        checksums = {checksum for _, checksum in results}
        assert len(checksums) == 1
        sources = sorted(source for source, _ in results)
        assert "generated" in sources
        assert set(sources) <= {"generated", "disk"}

        # Exactly one complete entry; no leftover locks or temp dirs.
        key = dataset_fingerprint("microbench", eval(f"mb.{CONFIG}"))
        entries = [p.name for p in cache_dir.iterdir()]
        assert entries == [key]
        assert (cache_dir / key / "meta.json").is_file()

        # A third, fresh process maps the stored entry.
        (source, checksum), = run_loaders(cache_dir, 1)
        assert source == "disk"
        assert checksum == checksums.pop()


class TestLockFile:
    def test_lock_released_after_generation(self, tmp_path):
        cache = DatasetCache(cache_dir=tmp_path)
        cache.load("microbench", eval(f"mb.{CONFIG}"))
        assert not list(tmp_path.glob("*.lock"))
        assert not list(tmp_path.glob(".*.lock"))

    def test_stale_lock_is_broken(self, tmp_path, monkeypatch):
        monkeypatch.setattr(cache_mod, "_LOCK_STALE_SECONDS", 0.1)
        cache = DatasetCache(cache_dir=tmp_path)
        config = eval(f"mb.{CONFIG}")
        key = dataset_fingerprint("microbench", config)
        lock = cache._lock_path(key)
        tmp_path.mkdir(exist_ok=True)
        lock.write_text("99999999")  # a holder that no longer exists
        stale = time.time() - 10.0
        os.utime(lock, (stale, stale))
        db = cache.load("microbench", config)
        assert cache.last_source == "generated"
        assert db.table("R").num_rows == 4_000
        assert not lock.exists()

    def test_unobtainable_lock_degrades_to_private_generation(
        self, tmp_path, monkeypatch
    ):
        # A fresh (non-stale) lock that is never released: the loader
        # gives up after the wait window and generates anyway.
        monkeypatch.setattr(cache_mod, "_LOCK_WAIT_SECONDS", 0.2)
        cache = DatasetCache(cache_dir=tmp_path)
        config = eval(f"mb.{CONFIG}")
        key = dataset_fingerprint("microbench", config)
        tmp_path.mkdir(exist_ok=True)
        cache._lock_path(key).write_text(str(os.getpid()))
        begin = time.monotonic()
        db = cache.load("microbench", config)
        assert time.monotonic() - begin >= 0.2
        assert cache.last_source == "generated"
        assert db.table("R").num_rows == 4_000
        # the foreign lock is left alone (its holder may still be alive)
        assert cache._lock_path(key).exists()

    def test_waiter_finds_entry_stored_by_lock_holder(
        self, tmp_path, monkeypatch
    ):
        # Simulate the loser's path deterministically: the lock exists
        # when load() starts, and the entry appears before it is
        # released — the waiter must come back with a disk hit, not a
        # second generation.
        cache = DatasetCache(cache_dir=tmp_path)
        config = eval(f"mb.{CONFIG}")
        key = dataset_fingerprint("microbench", config)
        tmp_path.mkdir(exist_ok=True)
        lock = cache._lock_path(key)
        lock.write_text(str(os.getpid()))

        winner = DatasetCache(cache_dir=tmp_path)
        db = mb.generate(config)
        real_sleep = time.sleep

        def store_release_and_sleep(seconds):
            # The first poll tick: the "winner" finishes its store and
            # releases the lock while we wait.
            if lock.exists():
                winner._store_disk(key, "microbench", config, db)
                lock.unlink(missing_ok=True)
            real_sleep(seconds)

        monkeypatch.setattr(
            cache_mod.time, "sleep", store_release_and_sleep
        )
        loaded = cache.load("microbench", config)
        assert cache.last_source == "disk"
        assert (
            int(loaded.table("R").column("r_a").values.sum())
            == int(db.table("R").column("r_a").values.sum())
        )


STALE_RACE_LOADER = f"""
import sys
import repro.datagen.cache as cache_mod
cache_mod._LOCK_STALE_SECONDS = 0.05  # the pre-aged lock reads stale
from repro.datagen import microbench as mb
from repro.datagen.cache import DatasetCache

cache = DatasetCache(cache_dir=sys.argv[1])
db = cache.load("microbench", mb.{CONFIG})
checksum = int(db.table("R").column("r_a").values.sum())
print(cache.last_source, checksum)
"""


class TestStaleLockBreakRace:
    """The two-waiter stale-break race: both waiters observe the same
    over-age lock, but only the one whose ``unlink`` actually removed
    *that* lock may claim — the other must honour whoever claims next
    instead of deleting the winner's fresh lock from under it."""

    def test_breaker_claims_only_the_lock_it_saw(self, tmp_path):
        cache = DatasetCache(cache_dir=tmp_path)
        tmp_path.mkdir(exist_ok=True)
        lock = tmp_path / ".stale.lock"
        lock.write_text("99999999")
        seen = lock.stat()
        assert cache._break_stale_lock(lock, seen) is True
        assert not lock.exists()

    def test_breaker_spares_a_replacement_lock(self, tmp_path):
        # Waiter A broke the stale lock and re-acquired; waiter B still
        # holds the *old* stat. B's break attempt must no-op.
        cache = DatasetCache(cache_dir=tmp_path)
        tmp_path.mkdir(exist_ok=True)
        lock = tmp_path / ".stale.lock"
        lock.write_text("99999999")
        seen = lock.stat()
        lock.unlink()  # A's break...
        lock.write_text(str(os.getpid()))  # ...and fresh acquisition
        os.utime(lock)  # fresh mtime: a live holder
        assert cache._break_stale_lock(lock, seen) is False
        assert lock.exists()  # A's fresh lock survived B

    def test_breaker_handles_lock_vanishing(self, tmp_path):
        cache = DatasetCache(cache_dir=tmp_path)
        tmp_path.mkdir(exist_ok=True)
        lock = tmp_path / ".stale.lock"
        lock.write_text("99999999")
        seen = lock.stat()
        lock.unlink()  # another waiter broke it first
        assert cache._break_stale_lock(lock, seen) is False

    def test_two_processes_contend_on_an_aged_lock(self, tmp_path):
        """Two real subprocesses race an artificially aged lock file:
        exactly one generation, the other served from the winner's
        entry, no lock left behind."""
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        config = eval(f"mb.{CONFIG}")
        key = dataset_fingerprint("microbench", config)
        lock = DatasetCache(cache_dir=cache_dir)._lock_path(key)
        lock.write_text("99999999")  # a crashed holder's leftover
        aged = time.time() - 30.0
        os.utime(lock, (aged, aged))

        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", STALE_RACE_LOADER, str(cache_dir)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
                text=True,
            )
            for _ in range(2)
        ]
        results = []
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            source, checksum = out.split()
            results.append((source, int(checksum)))

        # Exactly one generation; identical answers.
        sources = sorted(source for source, _ in results)
        assert sources.count("generated") == 1, sources
        assert len({checksum for _, checksum in results}) == 1
        # One complete entry, and no lock was lost or leaked.
        assert [p.name for p in cache_dir.iterdir()] == [key]
        assert not lock.exists()


class TestAtomicStore:
    def test_interrupted_store_leaves_no_entry(self, tmp_path):
        cache = DatasetCache(cache_dir=tmp_path)
        config = eval(f"mb.{CONFIG}")
        key = dataset_fingerprint("microbench", config)
        db = mb.generate(config)

        import numpy as np

        original = np.save
        calls = {"n": 0}

        def failing_save(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                raise OSError("disk full")
            return original(*args, **kwargs)

        np.save = failing_save
        try:
            with pytest.raises(OSError):
                cache._store_disk(key, "microbench", config, db)
        finally:
            np.save = original
        # the temp dir was cleaned up and no half-entry is visible
        assert not (tmp_path / key).exists()
        assert cache._load_disk(key) is None

    def test_concurrent_store_of_same_key_is_harmless(self, tmp_path):
        cache = DatasetCache(cache_dir=tmp_path)
        config = eval(f"mb.{CONFIG}")
        key = dataset_fingerprint("microbench", config)
        db = mb.generate(config)
        cache._store_disk(key, "microbench", config, db)
        cache._store_disk(key, "microbench", config, db)  # loser's rename
        assert cache._load_disk(key) is not None
        # only the entry itself remains, no orphaned temp dirs
        assert [p.name for p in tmp_path.iterdir()] == [key]
