"""Tests for tables, catalog, and the Database facade."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage.column import int_column
from repro.storage.database import Database
from repro.storage.table import Catalog, ForeignKey, Table, make_table


def _table(name="t", n=5):
    return make_table(
        name,
        [
            int_column("pk", np.arange(n)),
            int_column("v", np.arange(n) * 2),
        ],
    )


class TestTable:
    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            make_table("t", [int_column("a", [1]), int_column("b", [1, 2])])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            make_table("t", [int_column("a", [1]), int_column("a", [2])])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Table(name="t", columns=())

    def test_num_rows(self):
        assert _table(n=7).num_rows == 7
        assert len(_table(n=7)) == 7

    def test_column_lookup(self):
        table = _table()
        assert table.column("v").name == "v"
        assert "v" in table
        assert "nope" not in table

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            _table().column("nope")

    def test_getitem_returns_raw_values(self):
        assert _table()["v"].tolist() == [0, 2, 4, 6, 8]

    def test_nbytes_sums_columns(self):
        table = _table(n=4)
        assert table.nbytes == sum(c.nbytes for c in table.columns)

    def test_select_rows(self):
        sub = _table().select_rows(np.asarray([3, 1]))
        assert sub["pk"].tolist() == [3, 1]
        assert sub.num_rows == 2

    def test_head(self):
        head = _table(n=10).head(3)
        assert head["pk"].tolist() == [0, 1, 2]


class TestCatalog:
    def test_add_and_lookup(self):
        cat = Catalog()
        cat.add_table(_table("x"))
        assert cat.table("x").name == "x"
        assert "x" in cat
        assert cat.table_names == ["x"]

    def test_duplicate_table_rejected(self):
        cat = Catalog()
        cat.add_table(_table("x"))
        with pytest.raises(SchemaError):
            cat.add_table(_table("x"))

    def test_unknown_table_raises(self):
        with pytest.raises(SchemaError):
            Catalog().table("nope")

    def test_foreign_key_endpoints_validated(self):
        cat = Catalog()
        cat.add_table(_table("a"))
        cat.add_table(_table("b"))
        with pytest.raises(SchemaError):
            cat.add_foreign_key(ForeignKey("a", "nope", "b", "pk"))

    def test_foreign_keys_filtered_by_table(self):
        cat = Catalog()
        cat.add_table(_table("a"))
        cat.add_table(_table("b"))
        cat.add_foreign_key(ForeignKey("a", "v", "b", "pk"))
        assert len(cat.foreign_keys("a")) == 1
        assert cat.foreign_keys("b") == []
        assert len(cat.foreign_keys()) == 1


class TestDatabase:
    def test_fk_index_built_eagerly(self):
        db = Database()
        db.add_table(_table("dim", n=4))
        db.add_table(
            make_table(
                "fact", [int_column("fk", [0, 3, 2, 2]), int_column("x", [1, 2, 3, 4])]
            )
        )
        index = db.add_foreign_key("fact", "fk", "dim", "pk")
        assert index.offsets.tolist() == [0, 3, 2, 2]
        assert db.has_fk_index("fact", "fk")

    def test_missing_fk_index_raises(self):
        db = Database()
        db.add_table(_table("t"))
        with pytest.raises(SchemaError):
            db.fk_index("t", "v")

    def test_data_returns_all_columns(self):
        db = Database()
        db.add_table(_table("t"))
        data = db.data("t")
        assert set(data) == {"pk", "v"}

    def test_column_values_with_rows(self):
        db = Database()
        db.add_table(_table("t"))
        out = db.column_values("t", "v", rows=np.asarray([0, 2]))
        assert out.tolist() == [0, 4]
