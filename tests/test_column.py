"""Tests for typed columns (repro.storage.column)."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.column import (
    Column,
    LogicalType,
    date_column,
    decimal_column,
    int_column,
    string_column,
)


class TestLogicalType:
    def test_int_widths(self):
        assert LogicalType.INT8.byte_width == 1
        assert LogicalType.INT16.byte_width == 2
        assert LogicalType.INT32.byte_width == 4
        assert LogicalType.INT64.byte_width == 8

    def test_decimal_is_int64(self):
        assert LogicalType.DECIMAL.numpy_dtype == np.dtype(np.int64)

    def test_date_is_int32(self):
        assert LogicalType.DATE.numpy_dtype == np.dtype(np.int32)

    def test_string_is_int32_codes(self):
        assert LogicalType.STRING.numpy_dtype == np.dtype(np.int32)


class TestColumn:
    def test_values_coerced_to_physical_dtype(self):
        col = Column("a", LogicalType.INT8, [1, 2, 3])
        assert col.values.dtype == np.int8

    def test_values_are_read_only(self):
        col = Column("a", LogicalType.INT32, [1, 2, 3])
        with pytest.raises(ValueError):
            col.values[0] = 9

    def test_len_and_nbytes(self):
        col = Column("a", LogicalType.INT32, np.arange(10))
        assert len(col) == 10
        assert col.nbytes == 40
        assert col.byte_width == 4

    def test_string_requires_dictionary(self):
        with pytest.raises(StorageError):
            Column("s", LogicalType.STRING, [0, 1])

    def test_negative_scale_rejected(self):
        with pytest.raises(StorageError):
            Column("d", LogicalType.DECIMAL, [1], scale=-1)

    def test_with_values_preserves_metadata(self):
        col = decimal_column("d", [1.25, 2.5], scale=2)
        other = col.with_values(np.asarray([100, 200]))
        assert other.scale == 2
        assert other.logical_type is LogicalType.DECIMAL


class TestConstructors:
    def test_int_column_default_int64(self):
        assert int_column("a", [1]).logical_type is LogicalType.INT64

    def test_int_column_rejects_non_integer_type(self):
        with pytest.raises(StorageError):
            int_column("a", [1], LogicalType.DECIMAL)

    def test_decimal_roundtrip(self):
        col = decimal_column("d", [1.25, -2.50, 0.0], scale=2)
        assert col.values.tolist() == [125, -250, 0]
        assert col.decode().tolist() == [1.25, -2.50, 0.0]

    def test_decimal_rounding(self):
        col = decimal_column("d", [0.005], scale=2)
        assert col.values.tolist() in ([0], [1])  # banker's rounding

    def test_date_column(self):
        col = date_column("d", [0, 10_000])
        assert col.logical_type is LogicalType.DATE
        assert col.values.dtype == np.int32


class TestStringColumn:
    def test_dictionary_sorted(self):
        col = string_column("s", ["b", "a", "c", "a"])
        assert col.dictionary == ("a", "b", "c")

    def test_codes_preserve_order(self):
        col = string_column("s", ["b", "a", "c", "a"])
        assert col.decode().tolist() == ["b", "a", "c", "a"]

    def test_code_order_matches_lexicographic(self):
        col = string_column("s", ["apple", "banana", "cherry"])
        codes = col.values
        assert (np.diff(codes) > 0).all()

    def test_code_for_known_value(self):
        col = string_column("s", ["x", "y"])
        assert col.dictionary[col.code_for("y")] == "y"

    def test_code_for_unknown_value_raises(self):
        col = string_column("s", ["x"])
        with pytest.raises(StorageError):
            col.code_for("nope")

    def test_code_for_on_non_string_raises(self):
        col = int_column("a", [1])
        with pytest.raises(StorageError):
            col.code_for("x")

    def test_decode_strings(self):
        col = string_column("s", ["p", "q", "p"])
        assert col.decode().tolist() == ["p", "q", "p"]
