"""Tests for the SWOLE planner's technique decisions."""

import pytest

from repro.core import planner as P
from repro.core.planner import plan_query, technique_matrix
from repro.datagen import microbench as mb
from repro.engine.machine import PAPER_MACHINE


@pytest.fixture(scope="module")
def db():
    return mb.generate(
        mb.MicrobenchConfig(num_rows=50_000, s_rows=500, c_cardinality=64)
    )


#: Machine scaled as the harness would for this 50K-row database.
MACHINE = PAPER_MACHINE.scaled(mb.PAPER_R_ROWS / 50_000)


class TestScalarDecisions:
    def test_memory_bound_mul_picks_value_masking(self, db):
        plan = plan_query(mb.q1(50, "mul"), db, MACHINE)
        assert plan.aggregation == P.VALUE_MASKING
        assert plan.uses_pullup

    def test_compute_bound_div_falls_back_to_hybrid(self, db):
        plan = plan_query(mb.q1(30, "div"), db, MACHINE)
        assert plan.aggregation == P.HYBRID

    def test_estimates_recorded_for_all_candidates(self, db):
        plan = plan_query(mb.q1(50), db, MACHINE)
        assert set(plan.estimates) == {P.HYBRID, P.VALUE_MASKING}
        assert all(v > 0 for v in plan.estimates.values())


class TestAccessMerging:
    def test_detected_when_column_reused(self, db):
        plan = plan_query(mb.q3(50, "r_x"), db, MACHINE)
        assert plan.merged_columns == ("r_x",)

    def test_not_applied_without_reuse(self, db):
        plan = plan_query(mb.q1(50), db, MACHINE)
        assert plan.merged_columns == ()


class TestGroupedDecisions:
    def test_three_candidates_considered(self, db):
        plan = plan_query(mb.q2(50), db, MACHINE)
        assert set(plan.estimates) == {
            P.HYBRID,
            P.VALUE_MASKING,
            P.KEY_MASKING,
        }

    def test_low_selectivity_prefers_hybrid(self, db):
        plan = plan_query(mb.q2(2), db, MACHINE)
        assert plan.aggregation == P.HYBRID


class TestSemijoinDecisions:
    def test_bitmap_always_chosen(self, db):
        plan = plan_query(mb.q4(50, 50), db, MACHINE)
        assert plan.semijoin_build in (P.BITMAP_MASK, P.BITMAP_OFFSETS)

    def test_high_build_selectivity_prefers_mask_write(self, db):
        plan = plan_query(mb.q4(50, 95), db, MACHINE)
        assert plan.semijoin_build == P.BITMAP_MASK


class TestGroupjoinDecisions:
    def test_mode_is_decided(self, db):
        plan = plan_query(mb.q5(50), db, MACHINE)
        assert plan.groupjoin_mode in (P.EAGER, P.GROUPJOIN)
        assert set(plan.estimates) == {P.EAGER, P.GROUPJOIN}

    def test_describe_mentions_choices(self, db):
        plan = plan_query(mb.q5(50), db, MACHINE)
        assert "groupjoin=" in plan.describe()


class TestTechniqueMatrix:
    def test_matches_paper_figure_2(self):
        matrix = technique_matrix()
        assert set(matrix) == {
            "Value Masking",
            "Key Masking",
            "Access Merging",
            "Positional Bitmaps",
            "Eager Aggregation",
        }
        assert matrix["Access Merging"]["heuristics"] == "Always Better"
        assert matrix["Positional Bitmaps"]["heuristics"] == "Always Better"
