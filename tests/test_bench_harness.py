"""Tests for the benchmark sweep harness (repro.bench.microbench)."""

import pytest

from repro.bench import microbench as bench
from repro.datagen import microbench as mb

SMALL = mb.MicrobenchConfig(num_rows=20_000, s_rows=200, c_cardinality=32)
SELS = (10, 50, 90)


class TestSweepResult:
    def test_add_and_table(self):
        result = bench.SweepResult(title="t", x_label="sel%")
        result.add(10, "a", 1.0)
        result.add(10, "b", 2.0)
        result.add(20, "a", 3.0)
        result.add(20, "b", 1.0)
        text = result.format_table()
        assert "t" in text and "sel%" in text

    def test_crossover(self):
        result = bench.SweepResult(title="t", x_label="sel%")
        for x, a, b in ((10, 2.0, 1.0), (20, 1.5, 1.6), (30, 1.0, 2.0)):
            result.add(x, "a", a)
            result.add(x, "b", b)
        assert result.crossover("a", "b") == 20
        assert result.crossover("b", "a") == 10

    def test_crossover_none_when_never_cheaper(self):
        result = bench.SweepResult(title="t", x_label="sel%")
        result.add(10, "a", 2.0)
        result.add(10, "b", 1.0)
        assert result.crossover("a", "b") is None


class TestScaledMachine:
    def test_caches_shrink_with_data(self):
        machine = bench.scaled_machine(SMALL)
        from repro.engine.machine import PAPER_MACHINE

        assert machine.llc_bytes < PAPER_MACHINE.llc_bytes


class TestFigureSweeps:
    def test_fig8_structure(self):
        result = bench.fig8("mul", config=SMALL, selectivities=SELS)
        assert set(result.series) == {"datacentric", "hybrid", "swole"}
        assert result.x_values == list(SELS)
        assert all(
            len(series) == len(SELS) for series in result.series.values()
        )
        assert all(
            v > 0 for series in result.series.values() for v in series
        )

    def test_fig8_value_masking_flat(self):
        result = bench.fig8("mul", config=SMALL, selectivities=SELS)
        swole = result.series["swole"]
        assert max(swole) / min(swole) < 1.2

    def test_fig9_scales_cardinality(self):
        result = bench.fig9(10_000_000, config=SMALL, selectivities=(50,))
        assert "uQ2" in result.title

    def test_fig10_merging_beats_plain_masking(self):
        result = bench.fig10("r_x", config=SMALL, selectivities=SELS)
        assert set(result.series) == {"datacentric", "hybrid", "swole"}

    def test_fig11_bitmaps_flat(self):
        result = bench.fig11("probe", 90, config=SMALL, selectivities=SELS)
        swole = result.series["swole"]
        assert max(swole) / min(swole) < 1.3

    def test_fig11_bad_side_rejected(self):
        with pytest.raises(ValueError):
            bench.fig11("sideways", 50, config=SMALL, selectivities=SELS)

    def test_fig12_structure(self):
        result = bench.fig12(1_000, config=SMALL, selectivities=SELS)
        assert result.decisions  # planner decisions recorded

    def test_run_strategies_returns_seconds(self, micro_db):
        machine = bench.scaled_machine(SMALL)
        out = bench.run_strategies(mb.q1(50), micro_db, machine)
        assert set(out) == {"datacentric", "hybrid", "swole"}
