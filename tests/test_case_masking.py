"""Tests for CASE-statement value masking (paper §III-A extension)."""

import numpy as np
import pytest

from repro.core import case_masking
from repro.engine.events import Branch, CondRead
from repro.engine.machine import PAPER_MACHINE
from repro.engine.session import Session
from repro.errors import PlanError
from repro.plan.expressions import Case, Col, Const, arith_ops, col_refs


@pytest.fixture()
def data(rng):
    return {
        "x": rng.integers(0, 100, 20_000).astype(np.int32),
        "a": rng.integers(1, 50, 20_000).astype(np.int32),
        "b": rng.integers(1, 50, 20_000).astype(np.int32),
    }


@pytest.fixture()
def tiered_case():
    """CASE WHEN x<30 THEN a*2 WHEN x<70 THEN a+b ELSE b END."""
    return Case(
        branches=(
            (Col("x") < Const(30), Col("a") * Const(2)),
            (Col("x") < Const(70), Col("a") + Col("b")),
        ),
        default=Col("b"),
    )


class TestCaseExpression:
    def test_requires_branches(self):
        with pytest.raises(PlanError):
            Case(branches=(), default=Const(0))

    def test_evaluate_first_match_wins(self, data, tiered_case):
        out = tiered_case.evaluate(data)
        x, a, b = (data[k].astype(np.int64) for k in ("x", "a", "b"))
        expected = np.where(x < 30, a * 2, np.where(x < 70, a + b, b))
        assert np.array_equal(out, expected)

    def test_columns_and_refs(self, tiered_case):
        assert tiered_case.columns() == frozenset({"x", "a", "b"})
        assert col_refs(tiered_case).count("x") == 2

    def test_arith_ops_counts_all_arms(self, tiered_case):
        assert sorted(arith_ops(tiered_case)) == ["add", "mul"]

    def test_to_c_is_ternary_chain(self, tiered_case):
        c = tiered_case.to_c()
        assert c.count("?") == 2 and c.endswith("b[i]")


class TestCompiledForms:
    def test_both_forms_agree_with_numpy(self, data, tiered_case):
        expected = int(tiered_case.evaluate(data).sum())
        masked = case_masking.masked_case_sum(Session(), data, tiered_case)
        branched = case_masking.branching_case_sum(
            Session(), data, tiered_case
        )
        assert masked == expected
        assert branched == expected

    def test_masked_form_emits_no_branches(self, data, tiered_case):
        session = Session()
        case_masking.masked_case_sum(session, data, tiered_case)
        events = [e for _, e, _ in session.tracer.report.events]
        assert not any(isinstance(e, Branch) for e in events)
        assert not any(isinstance(e, CondRead) for e in events)

    def test_branching_form_pays_mispredictions(self, data, tiered_case):
        session = Session()
        case_masking.branching_case_sum(session, data, tiered_case)
        branches = [
            e
            for _, e, _ in session.tracer.report.events
            if isinstance(e, Branch)
        ]
        assert len(branches) == len(tiered_case.branches)

    def test_masking_wins_on_cheap_arms(self, data, tiered_case):
        masked = Session()
        case_masking.masked_case_sum(masked, data, tiered_case)
        branched = Session()
        case_masking.branching_case_sum(branched, data, tiered_case)
        assert (
            masked.tracer.report.total_cycles
            < branched.tracer.report.total_cycles
        )


class TestCostCheck:
    def test_cheap_case_masks(self, tiered_case):
        assert case_masking.masking_beneficial(
            PAPER_MACHINE, tiered_case, 1_000_000
        )

    def test_expensive_arms_branch(self):
        pricey = Case(
            branches=tuple(
                (Col("x") < Const(10 * i), Col("a") / Col("b"))
                for i in range(1, 9)
            ),
            default=Col("b") / Col("a"),
        )
        assert not case_masking.masking_beneficial(
            PAPER_MACHINE, pricey, 1_000_000
        )
