"""Query service semantics: admission, shedding, deadlines, drain.

Policy tests use a duck-typed stub engine whose execution blocks on an
event, making queue states deterministic; one end-to-end test runs the
real :class:`Engine` to pin the served answer to the library answer.
"""

import threading
import time
from types import SimpleNamespace

import pytest

from repro.datagen import microbench as mb
from repro.engine import Engine
from repro.errors import ReproError
from repro.server import (
    ERR_CANCELLED,
    ERR_DEADLINE,
    ERR_EXECUTION,
    ERR_QUEUE_FULL,
    ERR_SHUTTING_DOWN,
    QueryRequest,
    QueryService,
)


class StubEngine:
    """Duck-typed engine: optionally blocks until released, counts
    calls, honours the cancel token like the real executor does."""

    def __init__(self, gate=None, fail=False):
        self.gate = gate  # threading.Event the run waits for
        self.fail = fail
        self.calls = []
        self.shutdowns = 0

    def execute(
        self,
        query,
        strategy="auto",
        *,
        workers=None,
        backend=None,
        shards=None,
        cancel=None,
    ):
        self.calls.append(query)
        if self.gate is not None:
            assert self.gate.wait(timeout=30.0), "stub gate never opened"
        if cancel is not None:
            cancel.check("stub query")
        if self.fail:
            raise ReproError("injected engine failure")
        return SimpleNamespace(
            value={"echo": query},
            report=SimpleNamespace(metrics=None),
        )

    def shutdown(self):
        self.shutdowns += 1


def fill_one_worker(service, gate):
    """Occupy the single service thread and wait until it is in flight."""
    blocker = service.submit(QueryRequest(query="blocker"))
    deadline = time.monotonic() + 5.0
    while service.in_flight == 0:
        assert time.monotonic() < deadline, "worker never picked up"
        time.sleep(0.005)
    return blocker


class TestHappyPath:
    def test_served_answer_matches_library_call(self, micro_db):
        with Engine(db=micro_db, workers=2) as engine:
            direct = engine.execute(mb.q1(30), "swole", workers=1)
            with QueryService(engine, concurrency=2) as service:
                response = service.execute(
                    QueryRequest(query=mb.q1(30), strategy="swole")
                )
            assert response.ok
            assert response.value == pytest.approx(direct.value)
            assert response.metrics["queue_wait_seconds"] >= 0.0
            assert response.metrics["service_seconds"] > 0.0
            assert response.metrics["plan_cache"] in ("hit", "miss")

    def test_wire_spec_and_bare_query_submissions(self, micro_db):
        with Engine(db=micro_db, workers=1) as engine:
            with QueryService(engine, concurrency=1) as service:
                via_spec = service.execute(
                    QueryRequest(
                        query={"micro": "q1", "args": {"sel": 30}},
                        strategy="swole",
                    )
                )
                bare = service.execute(mb.q1(30))  # wrapped automatically
            assert via_spec.ok and bare.ok
            assert via_spec.value == pytest.approx(bare.value)

    def test_plan_envelope_served(self, micro_db):
        # An operator tree submitted as its wire form (structural JSON +
        # IR fingerprint) answers identically to the in-process plan.
        from repro.plan import PlanBuilder, plan_to_wire
        from repro.plan.expressions import Col
        from repro.plan.logical import AggSpec
        from repro.server.protocol import encode_value

        plan = (
            PlanBuilder.scan("R")
            .filter(Col("r_x") < 30)
            .group_agg(
                AggSpec("sum", Col("r_a") * Col("r_b"), name="sum")
            )
            .build("wire-uq1")
        )
        with Engine(db=micro_db, workers=1) as engine:
            direct = engine.execute(plan, "swole", workers=1)
            with QueryService(engine, concurrency=1) as service:
                response = service.execute(
                    QueryRequest(query=plan_to_wire(plan), strategy="swole")
                )
            assert response.ok
            assert response.value == encode_value(direct.value)
            assert response.metrics["plan_cache"] == "hit"

    def test_stats_count_outcomes(self):
        service = QueryService(StubEngine(), concurrency=1)
        service.execute("a")
        service.execute("b")
        service.shutdown()
        snap = service.stats.snapshot()
        assert snap["submitted"] == snap["completed"] == 2
        assert snap["shed"] == 0
        assert snap["avg_service_seconds"] >= 0.0

    def test_execution_error_is_structured(self):
        with QueryService(StubEngine(fail=True), concurrency=1) as service:
            response = service.execute("boom")
        assert response.error_code == ERR_EXECUTION
        assert "injected" in response.error.message
        assert service.stats.failed == 1

    def test_bad_query_spec_is_structured(self):
        with QueryService(StubEngine(), concurrency=1) as service:
            response = service.execute(
                QueryRequest(query={"micro": "q99"})
            )
        assert response.error_code == "bad_request"


class TestShedding:
    def test_full_queue_sheds_with_retry_after(self):
        gate = threading.Event()
        stub = StubEngine(gate=gate)
        service = QueryService(stub, concurrency=1, queue_depth=1)
        try:
            blocker = fill_one_worker(service, gate)
            queued = service.submit(QueryRequest(query="queued"))
            shed = service.submit(QueryRequest(query="shed me"))
            assert shed.done()  # rejected synchronously
            response = shed.response()
            assert response.error_code == ERR_QUEUE_FULL
            assert response.shed
            assert response.error.retry_after > 0.0
            assert "queue is full" in response.error.message
            gate.set()
            assert blocker.response(timeout=10.0).ok
            assert queued.response(timeout=10.0).ok
        finally:
            gate.set()
            service.shutdown()
        snap = service.stats.snapshot()
        assert snap["shed"] == 1
        assert snap["completed"] == 2
        assert snap["shed_rate"] == pytest.approx(1 / 3)
        assert "shed me" not in stub.calls  # never executed

    def test_retry_after_scales_with_backlog(self):
        gate = threading.Event()
        service = QueryService(
            StubEngine(gate=gate), concurrency=1, queue_depth=8
        )
        try:
            fill_one_worker(service, gate)
            small = service.retry_after_hint()
            for i in range(8):
                service.submit(QueryRequest(query=f"q{i}"))
            assert service.retry_after_hint() > small
        finally:
            gate.set()
            service.shutdown()


class TestDeadlines:
    def test_queue_expiry_answers_without_executing(self):
        gate = threading.Event()
        stub = StubEngine(gate=gate)
        service = QueryService(stub, concurrency=1, queue_depth=4)
        try:
            blocker = fill_one_worker(service, gate)
            doomed = service.submit(
                QueryRequest(query="doomed", deadline=0.05)
            )
            time.sleep(0.1)  # let the budget lapse while queued
            gate.set()
            response = doomed.response(timeout=10.0)
            assert response.error_code == ERR_DEADLINE
            assert "queued" in response.error.message
            assert blocker.response(timeout=10.0).ok
        finally:
            gate.set()
            service.shutdown()
        assert "doomed" not in stub.calls
        assert service.stats.timed_out == 1

    def test_default_deadline_applies_to_bare_requests(self):
        service = QueryService(StubEngine(), concurrency=1, default_deadline=5.0)
        try:
            pending = service.submit(QueryRequest(query="q"))
            assert pending.token.deadline is not None
            assert pending.response(timeout=10.0).ok
        finally:
            service.shutdown()

    def test_cancelling_a_queued_request(self):
        gate = threading.Event()
        stub = StubEngine(gate=gate)
        service = QueryService(stub, concurrency=1, queue_depth=4)
        try:
            blocker = fill_one_worker(service, gate)
            queued = service.submit(QueryRequest(query="withdrawn"))
            queued.cancel()
            gate.set()
            assert queued.response(timeout=10.0).error_code == ERR_CANCELLED
            assert blocker.response(timeout=10.0).ok
        finally:
            gate.set()
            service.shutdown()
        assert "withdrawn" not in stub.calls


class TestCoalescing:
    def queue_behind_blocker(self, stub, service, gate, specs):
        """Occupy the worker, queue ``specs``, then open the gate."""
        blocker = fill_one_worker(service, gate)
        pendings = [service.submit(QueryRequest(query=s)) for s in specs]
        gate.set()
        return blocker, pendings

    def test_queued_duplicates_share_one_execution(self):
        gate = threading.Event()
        stub = StubEngine(gate=gate)
        service = QueryService(stub, concurrency=1, queue_depth=8)
        try:
            blocker, pendings = self.queue_behind_blocker(
                stub, service, gate, ["same", "same", "same", "other"]
            )
            responses = [p.response(timeout=10.0) for p in pendings]
        finally:
            gate.set()
            service.shutdown()
        assert blocker.response(timeout=1.0).ok
        assert all(r.ok for r in responses)
        assert all(
            r.value == responses[0].value for r in responses[:3]
        )
        # One execution answered all three duplicates.
        assert stub.calls == ["blocker", "same", "other"]
        assert service.stats.coalesced == 2
        assert service.stats.completed == 5
        coalesced = [r for r in responses if r.metrics.get("coalesced")]
        assert len(coalesced) == 2
        for r in coalesced:
            assert r.metrics["queue_wait_seconds"] >= 0.0

    def test_coalesce_false_executes_each_request(self):
        gate = threading.Event()
        stub = StubEngine(gate=gate)
        service = QueryService(
            stub, concurrency=1, queue_depth=8, coalesce=False
        )
        try:
            _, pendings = self.queue_behind_blocker(
                stub, service, gate, ["same", "same", "same"]
            )
            assert all(p.response(timeout=10.0).ok for p in pendings)
        finally:
            gate.set()
            service.shutdown()
        assert stub.calls.count("same") == 3
        assert service.stats.coalesced == 0

    def test_cancelled_follower_is_answered_cancelled(self):
        gate = threading.Event()
        stub = StubEngine(gate=gate)
        service = QueryService(stub, concurrency=1, queue_depth=8)
        try:
            blocker = fill_one_worker(service, gate)
            leader = service.submit(QueryRequest(query="same"))
            follower = service.submit(QueryRequest(query="same"))
            follower.cancel()
            gate.set()
            assert leader.response(timeout=10.0).ok
            response = follower.response(timeout=10.0)
            assert response.error_code == ERR_CANCELLED
            assert response.metrics["coalesced"] is True
            assert blocker.response(timeout=1.0).ok
        finally:
            gate.set()
            service.shutdown()
        assert stub.calls.count("same") == 1

    def test_expired_follower_still_gets_the_value(self):
        gate = threading.Event()
        stub = StubEngine(gate=gate)
        service = QueryService(stub, concurrency=1, queue_depth=8)
        try:
            fill_one_worker(service, gate)
            leader = service.submit(QueryRequest(query="same"))
            follower = service.submit(
                QueryRequest(query="same", deadline=0.01)
            )
            time.sleep(0.05)
            gate.set()
            assert leader.response(timeout=10.0).ok
            response = follower.response(timeout=10.0)
        finally:
            gate.set()
            service.shutdown()
        # The leader's execution produced the value either way: deliver
        # it and report the miss instead of wasting the work.
        assert response.ok
        assert response.metrics["coalesced"] is True
        assert response.metrics["deadline_missed"] is True

    def test_followers_requeued_when_leader_fails(self):
        gate = threading.Event()
        stub = StubEngine(gate=gate, fail=True)
        service = QueryService(stub, concurrency=1, queue_depth=8)
        try:
            _, pendings = self.queue_behind_blocker(
                stub, service, gate, ["same", "same", "same"]
            )
            responses = [p.response(timeout=10.0) for p in pendings]
        finally:
            gate.set()
            service.shutdown()
        # No follower inherits the leader's failure: each got its own
        # execution (which then failed on its own terms).
        assert all(r.error_code == ERR_EXECUTION for r in responses)
        assert stub.calls.count("same") == 3

    def test_query_objects_are_not_coalesced(self):
        gate = threading.Event()
        stub = StubEngine(gate=gate)
        service = QueryService(stub, concurrency=1, queue_depth=8)
        try:
            _, pendings = self.queue_behind_blocker(
                stub, service, gate, [mb.q1(30), mb.q1(30)]
            )
            assert all(p.response(timeout=10.0).ok for p in pendings)
        finally:
            gate.set()
            service.shutdown()
        # Equal-by-construction Query objects still execute separately:
        # only wire-form specs have cheap, reliable equality.
        assert len(stub.calls) == 3
        assert service.stats.coalesced == 0


class TestDrain:
    def test_drain_under_load(self):
        # Satellite: queued requests get a structured shutting_down
        # rejection, in-flight ones complete, and the service (plus the
        # engine) shuts down idempotently afterwards.
        gate = threading.Event()
        stub = StubEngine(gate=gate)
        service = QueryService(
            stub, concurrency=1, queue_depth=8, own_engine=True
        )
        in_flight = fill_one_worker(service, gate)
        queued = [
            service.submit(QueryRequest(query=f"q{i}")) for i in range(3)
        ]

        drained = threading.Event()

        def drain():
            assert service.drain(timeout=30.0)
            drained.set()

        thread = threading.Thread(target=drain, daemon=True)
        thread.start()

        # Queued requests are rejected immediately, before the
        # in-flight one finishes.
        for pending in queued:
            response = pending.response(timeout=10.0)
            assert response.error_code == ERR_SHUTTING_DOWN
            assert "queued" in response.error.message
        assert not in_flight.done()
        assert not drained.is_set()

        gate.set()  # let the in-flight request complete
        thread.join(timeout=10.0)
        assert drained.is_set()
        assert in_flight.response().ok

        # New submissions are rejected while draining.
        late = service.submit(QueryRequest(query="late"))
        assert late.response().error_code == ERR_SHUTTING_DOWN

        # Shutdown is graceful and idempotent, including the engine's.
        assert service.shutdown(timeout=10.0)
        assert service.shutdown(timeout=10.0)
        assert stub.shutdowns >= 2
        assert service.state == "stopped"
        snap = service.stats.snapshot()
        assert snap["rejected_draining"] == 4  # 3 queued + 1 late
        assert snap["completed"] == 1  # the in-flight blocker

    def test_drain_times_out_when_in_flight_hangs(self):
        gate = threading.Event()
        service = QueryService(StubEngine(gate=gate), concurrency=1)
        try:
            fill_one_worker(service, gate)
            assert service.drain(timeout=0.1) is False
        finally:
            gate.set()
            service.shutdown()

    def test_engine_still_usable_after_service_shutdown(self, micro_db):
        engine = Engine(db=micro_db, workers=2)
        with QueryService(engine, concurrency=2) as service:
            assert service.execute(mb.q1(30)).ok
        # own_engine defaults to False: the engine survives the service
        result = engine.execute(mb.q1(30), "swole", workers=2)
        assert result is not None
        engine.shutdown()
        engine.shutdown()  # idempotent


class TestValidation:
    def test_constructor_rejects_bad_parameters(self):
        stub = StubEngine()
        with pytest.raises(ReproError):
            QueryService(stub, concurrency=0)
        with pytest.raises(ReproError):
            QueryService(stub, queue_depth=0)
        with pytest.raises(ReproError):
            QueryService(stub, default_deadline=0.0)

    def test_unresolved_response_times_out(self):
        gate = threading.Event()
        service = QueryService(StubEngine(gate=gate), concurrency=1)
        try:
            pending = fill_one_worker(service, gate)
            with pytest.raises(ReproError, match=r"did not resolve"):
                pending.response(timeout=0.05)
        finally:
            gate.set()
            service.shutdown()
