"""Shared fixtures: small generated databases and sessions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import microbench as mb
from repro.datagen import tpch
from repro.engine.machine import PAPER_MACHINE
from repro.engine.session import Session


@pytest.fixture(scope="session")
def micro_db():
    """A small microbenchmark database shared across tests."""
    return mb.generate(
        mb.MicrobenchConfig(num_rows=50_000, s_rows=500, c_cardinality=64)
    )


@pytest.fixture(scope="session")
def micro_config():
    return mb.MicrobenchConfig(num_rows=50_000, s_rows=500, c_cardinality=64)


@pytest.fixture(scope="session")
def tpch_db():
    """A tiny TPC-H database shared across tests."""
    return tpch.generate(tpch.TpchConfig(scale_factor=0.002))


@pytest.fixture(scope="session")
def tpch_config():
    return tpch.TpchConfig(scale_factor=0.002)


@pytest.fixture()
def session():
    """A fresh execution session on the paper machine."""
    return Session(machine=PAPER_MACHINE)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
