"""Shared fixtures: small generated databases and sessions."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datagen import microbench as mb
from repro.datagen import tpch
from repro.engine.machine import PAPER_MACHINE
from repro.engine.session import Session


@pytest.fixture(scope="session", autouse=True)
def _isolated_dataset_cache_dir(tmp_path_factory):
    """Point the process-wide dataset cache at a per-run temp dir so
    tests never read or pollute the user's ``~/.cache``."""
    import repro.datagen.cache as cache_mod

    cache_dir = tmp_path_factory.mktemp("dataset-cache")
    old_env = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    cache_mod._default_cache = None
    yield
    if old_env is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old_env
    cache_mod._default_cache = None


@pytest.fixture(scope="session")
def micro_db():
    """A small microbenchmark database shared across tests."""
    return mb.generate(
        mb.MicrobenchConfig(num_rows=50_000, s_rows=500, c_cardinality=64)
    )


@pytest.fixture(scope="session")
def micro_config():
    return mb.MicrobenchConfig(num_rows=50_000, s_rows=500, c_cardinality=64)


@pytest.fixture(scope="session")
def tpch_db():
    """A tiny TPC-H database shared across tests."""
    return tpch.generate(tpch.TpchConfig(scale_factor=0.002))


@pytest.fixture(scope="session")
def tpch_config():
    return tpch.TpchConfig(scale_factor=0.002)


@pytest.fixture()
def session():
    """A fresh execution session on the paper machine."""
    return Session(machine=PAPER_MACHINE)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
