"""The vectorized backend is a drop-in replacement, bit for bit.

The contract of :mod:`repro.codegen.vectorize` is byte-identity: for
every query the engine can run, the generated whole-column NumPy
kernels must return exactly what the instrumented interpreter returns —
same keys, same aggregates, same Python scalar types — under every
strategy, serially and morsel-parallel. These tests pin that contract:

* the full TPC-H pipeline sweep (8 queries x 4 strategies, 32 cells),
  serial and parallel (``morsel_rows`` pinned to defeat the vectorized
  fan-out floor, so the parallel path really executes);
* the Fig. 7/8 microbenchmark queries, including the division variant
  (floor semantics and the divide-by-zero guard);
* the degenerate plan shapes from the pipeline edge-case suite (empty
  anti-join build, all-unmatched outer groupjoin, empty-bitmap
  disjunct);
* the grouping runtime's two internal paths (dense bincount vs sorted
  reduceat) against each other and against int64 wraparound semantics;
* the engine-level seams: backend-qualified plan-cache keys, the
  recorded effective backend, and the instrumented fallback when
  vectorization fails.
"""

import numpy as np
import pytest

from repro.codegen import npexec
from repro.codegen.pipeline import compile_pipeline
from repro.codegen.vectorize import VectorizeError
from repro.datagen import microbench as mb
from repro.engine import Engine, ExecutionKnobs
from repro.engine.program import results_equal
from repro.plan.builder import PlanBuilder, scan
from repro.plan.expressions import And, Col, Const, DictEq
from repro.plan.logical import AggSpec
from repro.tpch import PIPELINE_QUERIES, STRATEGIES, logical_plan


@pytest.fixture(scope="module")
def tpch_engine(tpch_db):
    # morsel_rows pinned: the vectorized fan-out floor would otherwise
    # run this tiny dataset serially, and the sweep must also cover the
    # morsel-parallel merge path.
    with Engine(
        db=tpch_db, workers=4, knobs=ExecutionKnobs(morsel_rows=1500)
    ) as engine:
        yield engine


@pytest.fixture(scope="module")
def micro_engine(micro_db):
    with Engine(
        db=micro_db, workers=4, knobs=ExecutionKnobs(morsel_rows=4096)
    ) as engine:
        yield engine


class TestTpchSweep:
    """All 32 TPC-H query x strategy cells, serial and parallel."""

    @pytest.mark.parametrize("name", PIPELINE_QUERIES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_cell_byte_identical(self, tpch_engine, name, strategy):
        plan = logical_plan(name)
        instrumented = tpch_engine.execute(
            plan, strategy, workers=1, backend="instrumented"
        )
        for workers in (1, 4):
            vectorized = tpch_engine.execute(
                plan, strategy, workers=workers, backend="vectorized"
            )
            assert results_equal(instrumented, vectorized), (
                name,
                strategy,
                workers,
            )


class TestEncodedSweep:
    """Serving code streams must be invisible in the answers: every
    cell, both backends, encoding auto vs off, byte for byte."""

    @pytest.fixture(scope="class")
    def decoded_engine(self, tpch_db):
        with Engine(
            db=tpch_db,
            workers=4,
            encoding="off",
            knobs=ExecutionKnobs(morsel_rows=1500),
        ) as engine:
            yield engine

    @pytest.mark.parametrize("name", PIPELINE_QUERIES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_cell_byte_identical(
        self, tpch_engine, decoded_engine, name, strategy
    ):
        plan = logical_plan(name)
        for backend in ("instrumented", "vectorized"):
            encoded = tpch_engine.execute(
                plan, strategy, workers=1, backend=backend
            )
            decoded = decoded_engine.execute(
                plan, strategy, workers=1, backend=backend
            )
            assert results_equal(encoded, decoded), (
                name,
                strategy,
                backend,
            )


class TestMicrobenchQueries:
    """The Fig. 7/8 queries, including floor division and its guard."""

    @pytest.mark.parametrize(
        "query",
        [mb.q1(30, "mul"), mb.q1(30, "div"), mb.q1(90, "mul"), mb.q2(30)],
        ids=["q1-mul-30", "q1-div-30", "q1-mul-90", "q2-30"],
    )
    @pytest.mark.parametrize("strategy", ("datacentric", "hybrid", "swole"))
    def test_byte_identical(self, micro_engine, query, strategy):
        instrumented = micro_engine.execute(
            query, strategy, workers=1, backend="instrumented"
        )
        for workers in (1, 4):
            vectorized = micro_engine.execute(
                query, strategy, workers=workers, backend="vectorized"
            )
            assert results_equal(instrumented, vectorized), (
                strategy,
                workers,
            )


#: A predicate no row satisfies (all stored columns are non-negative).
IMPOSSIBLE = Col("l_commitdate") < Const(-1)


def _edge_case_plans():
    """The degenerate shapes from the pipeline edge-case suite."""
    empty_anti = (
        PlanBuilder.scan("orders")
        .exists_join(
            scan("lineitem").filter(IMPOSSIBLE),
            pk_column="o_orderkey",
            fk_column="l_orderkey",
            anti=True,
        )
        .group_agg(
            AggSpec("count", None, name="order_count"),
            key="o_orderpriority",
        )
        .build("be-q4-empty-build")
    )
    all_unmatched = (
        PlanBuilder.scan("orders")
        .filter(Col("o_orderdate") < Const(-1))
        .outer_group_join(
            "customer",
            fk_column="o_custkey",
            pk_column="c_custkey",
            count_name="c_count",
        )
        .group_agg(AggSpec("count", None, name="custdist"), key="c_count")
        .build("be-q13-all-unmatched")
    )
    disjuncts = (
        (
            And(
                [
                    DictEq("p_brand", "Brand#12"),
                    And([Col("p_size") >= 1, Col("p_size") <= 5]),
                ]
            ),
            And([Col("l_quantity") >= 1, Col("l_quantity") <= 11]),
        ),
        (
            And([Col("p_size") >= 999]),  # matches no part: empty bitmap
            And([Col("l_quantity") >= 0]),
        ),
    )
    empty_disjunct = (
        PlanBuilder.scan("lineitem")
        .disjunct_join(
            "part",
            fk_column="l_partkey",
            pk_column="p_partkey",
            disjuncts=disjuncts,
        )
        .group_agg(
            AggSpec(
                "sum",
                Col("l_extendedprice") * (Const(100) - Col("l_discount")),
                name="revenue",
            )
        )
        .build("be-q19-empty-disjunct")
    )
    return {
        "empty-anti-build": empty_anti,
        "all-unmatched-outer": all_unmatched,
        "empty-disjunct": empty_disjunct,
    }


class TestEdgeCasePlans:
    """Degenerate plan shapes agree across backends under every
    strategy (empty intermediates stress the kernels' zero-row paths)."""

    @pytest.mark.parametrize("shape", sorted(_edge_case_plans()))
    def test_byte_identical(self, tpch_engine, shape):
        plan = _edge_case_plans()[shape]
        for strategy in STRATEGIES:
            instrumented = tpch_engine.execute(
                plan, strategy, workers=1, backend="instrumented"
            )
            vectorized = tpch_engine.execute(
                plan, strategy, workers=4, backend="vectorized"
            )
            assert results_equal(instrumented, vectorized), (shape, strategy)


class TestGroupingRuntime:
    """The two grouping paths agree with each other and with int64
    wraparound reference sums."""

    def _reference(self, keys, deltas, mask=None):
        if mask is not None:
            keys = keys[mask]
            deltas = [d[mask] for d in deltas]
        uniq = np.unique(keys)
        aggs = np.stack(
            [
                np.array(
                    [d[keys == k].sum(dtype=np.int64) for k in uniq],
                    dtype=np.int64,
                )
                for d in deltas
            ],
            axis=1,
        ) if deltas else np.zeros((uniq.size, 1), dtype=np.int64)
        return {"keys": uniq, "aggs": aggs}

    def _check(self, keys, deltas, mask=None):
        got = npexec.group_sorted(keys, deltas, mask)
        want = self._reference(keys, deltas, mask)
        assert np.array_equal(got["keys"], want["keys"])
        assert got["aggs"].dtype == np.int64
        assert np.array_equal(got["aggs"], want["aggs"])

    def test_dense_keys_take_bincount_path(self, rng):
        keys = rng.integers(0, 100, size=10_000, dtype=np.int64)
        assert npexec._dense_codes(keys) is not None
        deltas = [rng.integers(-1000, 1000, size=keys.size, dtype=np.int64)]
        self._check(keys, deltas)

    def test_sparse_keys_take_sort_path(self, rng):
        keys = rng.integers(0, 2**40, size=1000, dtype=np.int64)
        assert npexec._dense_codes(keys) is None
        deltas = [rng.integers(-1000, 1000, size=keys.size, dtype=np.int64)]
        self._check(keys, deltas)

    @pytest.mark.parametrize("spread", (100, 2**40))
    def test_mask_folds_into_both_paths(self, rng, spread):
        keys = rng.integers(0, spread, size=5000, dtype=np.int64)
        deltas = [
            rng.integers(-(2**40), 2**40, size=keys.size, dtype=np.int64),
            rng.integers(0, 2, size=keys.size, dtype=np.int64),
        ]
        mask = rng.integers(0, 2, size=keys.size, dtype=bool)
        self._check(keys, deltas, mask)

    def test_all_false_mask_yields_empty_groups(self):
        keys = np.arange(100, dtype=np.int64)
        deltas = [np.ones(100, dtype=np.int64)]
        got = npexec.group_sorted(keys, deltas, np.zeros(100, dtype=bool))
        assert got["keys"].size == 0
        assert got["aggs"].shape == (0, 1)

    def test_bincount_path_wraps_like_int64(self):
        # Two deltas whose int64 sum overflows: the hi/lo-split bincount
        # must wrap mod 2^64 exactly as repeated int64 addition does.
        keys = np.zeros(4, dtype=np.int64)
        big = np.int64(2**62)
        deltas = [np.array([big, big, big, big], dtype=np.int64)]
        with np.errstate(over="ignore"):
            expected = np.int64(0)
            for d in deltas[0]:
                expected = expected + d
        got = npexec.group_sorted(keys, deltas)
        assert got["aggs"][0, 0] == expected

    @pytest.mark.parametrize("spread", (64, 2**40))
    def test_count_by_matches_unique(self, rng, spread):
        keys = rng.integers(0, spread, size=4000, dtype=np.int64)
        got_keys, got_counts = npexec.count_by(keys)
        uniq, counts = np.unique(keys, return_counts=True)
        assert np.array_equal(got_keys, uniq)
        assert got_counts.dtype == np.int64
        assert np.array_equal(got_counts, counts)


class TestEngineSeams:
    """Backend selection is visible and isolated at the engine layer."""

    def test_plan_cache_keys_are_backend_qualified(self, tpch_db):
        with Engine(db=tpch_db) as engine:
            plan = logical_plan("Q6")
            engine.execute(plan, "swole", backend="vectorized")
            misses = engine.cache_stats.misses
            # Same query on the other backend must compile again, not
            # serve the vectorized program from the cache.
            engine.execute(plan, "swole", backend="instrumented")
            assert engine.cache_stats.misses == misses + 1
            engine.execute(plan, "swole", backend="instrumented")
            assert engine.cache_stats.misses == misses + 1  # now cached

    def test_explain_names_the_backend(self, tpch_db):
        with Engine(db=tpch_db) as engine:
            assert "vectorized" in engine.explain(
                logical_plan("Q1"), "swole", backend="vectorized"
            )
            assert "instrumented" in engine.explain(
                logical_plan("Q1"), "swole", backend="instrumented"
            )

    def test_vectorize_failure_falls_back(self, tpch_db, monkeypatch):
        import repro.codegen.pipeline as pipeline_mod

        def boom(*_args, **_kwargs):
            raise VectorizeError("synthetic: op not vectorizable")

        monkeypatch.setattr(pipeline_mod, "compile_physical", boom)
        plan = logical_plan("Q6")
        compiled = compile_pipeline(
            plan, tpch_db, "swole", backend="vectorized"
        )
        assert compiled.notes["backend"] == "instrumented"
        assert "synthetic" in compiled.notes["backend_fallback"]

    def test_unknown_backend_rejected(self, tpch_db):
        with Engine(db=tpch_db) as engine:
            with pytest.raises(Exception, match="backend"):
                engine.execute(logical_plan("Q6"), "swole", backend="simd")
