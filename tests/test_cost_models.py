"""Tests for SWOLE's cost models (repro.core.cost_models).

The models are symbolically-executed event streams; these tests pin down
the paper's qualitative claims: value masking's selectivity independence,
the hybrid/VM crossover moving with compute intensity, key masking's
dependence on hash-table size, and eager aggregation's flatness.
"""

import pytest

from repro.core import cost_models as cm
from repro.engine.machine import PAPER_MACHINE
from repro.errors import CostModelError

N = 1_000_000


def inputs(sel, agg_ops=("mul",), **kwargs):
    defaults = dict(
        num_rows=N,
        selectivity=sel,
        pred_widths=(1, 1),
        agg_widths=(1, 1),
        agg_ops=tuple(agg_ops),
    )
    defaults.update(kwargs)
    return cm.ModelInputs(**defaults)


class TestModelInputs:
    def test_selectivity_validated(self):
        with pytest.raises(CostModelError):
            inputs(1.5)

    def test_negative_rows_rejected(self):
        with pytest.raises(CostModelError):
            cm.ModelInputs(num_rows=-1, selectivity=0.5)


class TestPlannedHtBytes:
    def test_matches_real_hashtable_sizing(self):
        from repro.engine.hashtable import HashTable

        for keys in (1, 10, 1000, 99_999):
            table = HashTable(expected_keys=keys, num_aggs=1)
            assert cm.planned_ht_bytes(keys, 1) == table.nbytes


class TestValueMasking:
    def test_selectivity_independent(self):
        low = cm.value_masking_cost(PAPER_MACHINE, inputs(0.01))
        high = cm.value_masking_cost(PAPER_MACHINE, inputs(0.99))
        assert low == pytest.approx(high)

    def test_hybrid_grows_with_selectivity(self):
        costs = [
            cm.hybrid_cost(PAPER_MACHINE, inputs(s))
            for s in (0.05, 0.3, 0.6, 0.95)
        ]
        assert costs == sorted(costs)

    def test_vm_wins_memory_bound_mul(self):
        # paper Fig 8a: masking beats hybrid at nearly all selectivities
        assert cm.value_masking_cost(
            PAPER_MACHINE, inputs(0.5)
        ) < cm.hybrid_cost(PAPER_MACHINE, inputs(0.5))

    def test_hybrid_wins_compute_bound_div_at_low_selectivity(self):
        # paper Fig 8b: division only favours masking near 100%
        div = inputs(0.3, agg_ops=("div",))
        assert cm.hybrid_cost(PAPER_MACHINE, div) < cm.value_masking_cost(
            PAPER_MACHINE, div
        )

    def test_div_crossover_near_full_selectivity(self):
        crossover = None
        for sel in [s / 100 for s in range(5, 100, 5)]:
            div = inputs(sel, agg_ops=("div",))
            if cm.value_masking_cost(
                PAPER_MACHINE, div
            ) <= cm.hybrid_cost(PAPER_MACHINE, div):
                crossover = sel
                break
        assert crossover is not None and crossover >= 0.8

    def test_access_merging_cheaper_when_memory_bound(self):
        # wide columns, no arithmetic: the stream side dominates, so the
        # saved read is visible; merging must never cost more either way
        base = inputs(0.5, agg_ops=(), agg_widths=(8, 8), pred_widths=(8,))
        merged = inputs(
            0.5,
            agg_ops=(),
            agg_widths=(8, 8),
            pred_widths=(8,),
            merged_widths=(8,),
        )
        assert cm.value_masking_cost(
            PAPER_MACHINE, merged
        ) < cm.value_masking_cost(PAPER_MACHINE, base)
        compute_bound = inputs(0.5, agg_ops=("div",), merged_widths=(1,))
        unmerged = cm.value_masking_cost(
            PAPER_MACHINE, inputs(0.5, agg_ops=("div",))
        )
        assert (
            cm.value_masking_cost(PAPER_MACHINE, compute_bound)
            <= unmerged * (1 + 1e-9)
        )


class TestKeyMasking:
    def test_km_tracks_vm_for_tiny_tables(self):
        ht = cm.planned_ht_bytes(10, 1)
        km = cm.key_masking_cost(PAPER_MACHINE, inputs(0.5), ht)
        vm = cm.value_masking_cost(PAPER_MACHINE, inputs(0.5), ht)
        assert km == pytest.approx(vm, rel=0.35)

    def test_km_beats_vm_for_large_tables_at_low_selectivity(self):
        # masked tuples hit the cached throwaway instead of DRAM
        ht = cm.planned_ht_bytes(10_000_000, 1)
        km = cm.key_masking_cost(PAPER_MACHINE, inputs(0.1), ht)
        vm = cm.value_masking_cost(PAPER_MACHINE, inputs(0.1), ht)
        assert km < vm

    def test_km_hybrid_crossover_never_moves_left_with_table_size(self):
        """Paper Fig 9 direction: bigger tables never make masking win
        *earlier*. (The measured sweeps in bench_fig9 show the full
        rightward shift; the closed-form planner captures the direction.)
        """
        machine = PAPER_MACHINE.scaled(100)

        def crossover(keys):
            ht_bytes = cm.planned_ht_bytes(keys, 1)
            for sel in [s / 100 for s in range(5, 100, 5)]:
                km = cm.key_masking_cost(machine, inputs(sel), ht_bytes)
                hy = cm.hybrid_cost(machine, inputs(sel), ht_bytes)
                if km <= hy:
                    return sel
            return 1.0

        points = [crossover(keys) for keys in (10, 1_000, 100_000)]
        assert points == sorted(points)
        assert points[0] < points[-1] or points[0] >= 0.5


class TestEagerAggregation:
    def _groupjoin_inputs(self, sel_s, build_rows=10_000):
        return cm.ModelInputs(
            num_rows=N,
            selectivity=1.0,
            agg_widths=(1, 1),
            agg_ops=("mul",),
            build_rows=build_rows,
            build_selectivity=sel_s,
            build_pred_widths=(1,),
            join_match_fraction=sel_s,
        )

    def test_eager_flat_across_build_selectivity(self):
        # |S| << |R| (the paper's regime): the cleanup deletions are a
        # rounding error, so EA's cost barely depends on the predicate
        ht = cm.planned_ht_bytes(10_000, 2)
        costs = [
            cm.eager_aggregation_cost(
                PAPER_MACHINE, self._groupjoin_inputs(s), ht
            )
            for s in (0.1, 0.5, 0.9)
        ]
        assert max(costs) / min(costs) < 1.4

    def test_groupjoin_cheaper_at_low_selectivity_small_table(self):
        small = self._groupjoin_inputs(0.05, build_rows=1_000)
        ht = cm.planned_ht_bytes(1_000, 2)
        assert cm.groupjoin_cost(
            PAPER_MACHINE, small, ht
        ) < cm.eager_aggregation_cost(PAPER_MACHINE, small, ht)


class TestBitmapBuild:
    def test_unconditional_beats_selective_at_high_selectivity(self):
        high = cm.ModelInputs(
            num_rows=N,
            selectivity=1.0,
            build_rows=1_000_000,
            build_selectivity=0.9,
            build_pred_widths=(1,),
        )
        assert cm.bitmap_build_unconditional_cost(
            PAPER_MACHINE, high
        ) < cm.bitmap_build_selective_cost(PAPER_MACHINE, high)

    def test_costs_scale_with_build_rows(self):
        small = cm.ModelInputs(
            num_rows=N, selectivity=1.0, build_rows=1_000,
            build_selectivity=0.5, build_pred_widths=(1,),
        )
        large = cm.ModelInputs(
            num_rows=N, selectivity=1.0, build_rows=1_000_000,
            build_selectivity=0.5, build_pred_widths=(1,),
        )
        assert cm.bitmap_build_unconditional_cost(
            PAPER_MACHINE, small
        ) < cm.bitmap_build_unconditional_cost(PAPER_MACHINE, large)
