"""Telemetry subsystem: registry, instruments, spans, ring logs."""

import json
import threading

import pytest

from repro.errors import ReproError
from repro.obs import (
    DEFAULT_BUCKETS,
    ErrorLog,
    MetricsRegistry,
    SlowQueryLog,
    metrics_registry,
    observe_span,
    set_metrics_registry,
    span,
)


class TestInstruments:
    def test_counter_counts_and_rejects_negatives(self):
        reg = MetricsRegistry()
        counter = reg.counter("requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ReproError, match="only go up"):
            counter.inc(-1)

    def test_same_name_and_labels_share_one_cell(self):
        reg = MetricsRegistry()
        a = reg.counter("queries_total", strategy="swole")
        b = reg.counter("queries_total", strategy="swole")
        c = reg.counter("queries_total", strategy="hybrid")
        assert a is b
        assert a is not c

    def test_bad_metric_name_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ReproError, match="not a valid identifier"):
            reg.counter("nope-hyphens")
        with pytest.raises(ReproError, match="not a valid identifier"):
            reg.gauge("ok_name", **{"bad label": 1})

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("queue_depth")
        gauge.set(7)
        gauge.add(-3)
        assert gauge.value == 4.0

    def test_histogram_merges_across_threads(self):
        reg = MetricsRegistry()
        hist = reg.histogram("span_seconds", stage="serve")
        per_thread, threads = 200, 8

        def work():
            for i in range(per_thread):
                hist.observe(0.001 * (i % 10))

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        merged = hist.merged()
        assert merged["count"] == per_thread * threads
        assert merged["sum"] == pytest.approx(
            sum(0.001 * (i % 10) for i in range(per_thread)) * threads
        )
        assert merged["min"] == 0.0
        assert merged["max"] == pytest.approx(0.009)
        assert sum(merged["buckets"].values()) == merged["count"]
        assert set(merged["buckets"]) == {
            *(str(b) for b in DEFAULT_BUCKETS), "+Inf"
        }

    def test_unsorted_bucket_bounds_raise(self):
        from repro.obs import Histogram

        with pytest.raises(ReproError, match="sorted"):
            Histogram(bounds=(1.0, 0.5))


class TestSources:
    def test_sources_fold_into_snapshot(self):
        reg = MetricsRegistry()
        reg.register_source("plan_cache", lambda: {"hits": 3, "misses": 1})
        snap = reg.snapshot()
        assert snap["sources"]["plan_cache"] == {"hits": 3, "misses": 1}

    def test_reregistering_a_source_replaces_it(self):
        reg = MetricsRegistry()
        reg.register_source("pool", lambda: {"workers": 1})
        reg.register_source("pool", lambda: {"workers": 8})
        assert reg.snapshot()["sources"]["pool"] == {"workers": 8}
        reg.unregister_source("pool")
        assert "pool" not in reg.snapshot()["sources"]

    def test_broken_source_does_not_kill_snapshot(self):
        reg = MetricsRegistry()
        reg.register_source("flaky", lambda: 1 / 0)
        reg.counter("ok_total").inc()
        snap = reg.snapshot()
        assert snap["counters"]["ok_total"] == 1
        assert "ZeroDivisionError" in snap["sources"]["flaky"]["error"]

    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("c_total", strategy="swole").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h", stage="x").observe(0.01)
        reg.register_source("s", lambda: {"v": 2})
        reg.slow_log.record(
            fingerprint="fp", strategy="swole", wall_seconds=9.0
        )
        reg.error_log.record("test", "boom")
        json.dumps(reg.snapshot())  # must not raise


class TestSpans:
    def test_span_context_manager_records_duration(self):
        reg = MetricsRegistry()
        with span("compile", reg, strategy="swole"):
            pass
        merged = reg.histogram(
            "span_seconds", stage="compile", strategy="swole"
        ).merged()
        assert merged["count"] == 1
        assert merged["sum"] >= 0.0

    def test_span_records_even_when_the_block_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            with span("execute", reg):
                raise ValueError("boom")
        assert reg.histogram("span_seconds", stage="execute").merged()[
            "count"
        ] == 1

    def test_observe_span_uses_default_registry_when_unset(self):
        reg = MetricsRegistry()
        set_metrics_registry(reg)
        try:
            observe_span("admit", 0.002)
            assert metrics_registry() is reg
            assert reg.histogram("span_seconds", stage="admit").merged()[
                "count"
            ] == 1
        finally:
            set_metrics_registry(None)


class TestRingLogs:
    def test_slow_log_threshold(self):
        log = SlowQueryLog(threshold_seconds=0.1)
        assert not log.record(
            fingerprint="fast", strategy="swole", wall_seconds=0.05
        )
        assert log.record(
            fingerprint="slow", strategy="swole", wall_seconds=0.2,
            event_counts={"Branch": 10},
        )
        entries = log.entries()
        assert len(entries) == 1
        assert entries[0]["fingerprint"] == "slow"
        assert entries[0]["event_counts"] == {"Branch": 10}

    def test_slow_log_is_a_ring(self):
        log = SlowQueryLog(capacity=2, threshold_seconds=0.0)
        for i in range(5):
            log.record(
                fingerprint=f"fp{i}", strategy="s", wall_seconds=1.0
            )
        snap = log.snapshot()
        assert snap["recorded"] == 5
        assert [e["fingerprint"] for e in snap["entries"]] == ["fp3", "fp4"]

    def test_slow_log_validates_config(self):
        with pytest.raises(ReproError):
            SlowQueryLog(capacity=0)
        with pytest.raises(ReproError):
            SlowQueryLog(threshold_seconds=-1.0)

    def test_error_log_keeps_newest(self):
        log = ErrorLog(capacity=3)
        for i in range(5):
            log.record("tcp.stop", f"err {i}", site="conn_close")
        snap = log.snapshot()
        assert snap["recorded"] == 5
        assert [e["message"] for e in snap["entries"]] == [
            "err 2", "err 3", "err 4"
        ]
        assert snap["entries"][0]["site"] == "conn_close"


class TestPrometheusRender:
    def test_render_contains_all_instrument_kinds(self):
        reg = MetricsRegistry()
        reg.counter("queries_total", strategy="swole").inc(3)
        reg.gauge("queue_depth").set(2)
        reg.histogram("span_seconds", stage="serve").observe(0.03)
        reg.register_source(
            "plan_cache", lambda: {"hit_rate": 0.75, "note": "text"}
        )
        text = reg.render_prometheus()
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{strategy="swole"} 3' in text
        assert "repro_queue_depth 2.0" in text
        assert "# TYPE repro_span_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_span_seconds_count" in text
        assert "repro_plan_cache_hit_rate 0.75" in text
        # Non-numeric source leaves are skipped, not rendered broken.
        assert "note" not in text

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("span_seconds", stage="x")
        hist.observe(0.0001)  # first bucket
        hist.observe(99.0)  # +Inf
        text = reg.render_prometheus()
        assert (
            'repro_span_seconds_bucket{stage="x",le="0.0005"} 1' in text
        )
        assert 'repro_span_seconds_bucket{stage="x",le="+Inf"} 2' in text


class TestDefaultRegistry:
    def test_default_is_a_singleton(self):
        set_metrics_registry(None)
        try:
            assert metrics_registry() is metrics_registry()
        finally:
            set_metrics_registry(None)
