"""Tests for the shared open-addressing hash table."""

import collections

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.hashtable import EMPTY, NULL_KEY, TOMBSTONE, HashTable
from repro.errors import ExecutionError


class TestGeometry:
    def test_capacity_is_power_of_two_at_double_fill(self):
        table = HashTable(expected_keys=100)
        assert table.capacity == 256

    def test_minimum_capacity(self):
        assert HashTable(expected_keys=0).capacity == 8

    def test_nbytes_counts_key_and_aggs(self):
        table = HashTable(expected_keys=4, num_aggs=2)
        assert table.slot_bytes == 8 + 16
        assert table.nbytes == table.capacity * table.slot_bytes

    def test_negative_args_rejected(self):
        with pytest.raises(ExecutionError):
            HashTable(expected_keys=-1)
        with pytest.raises(ExecutionError):
            HashTable(expected_keys=1, num_aggs=-1)


class TestAggregate:
    def test_simple_sums(self):
        table = HashTable(expected_keys=3)
        table.aggregate(np.asarray([1, 2, 1, 1]), np.asarray([10, 20, 30, 40]))
        assert table.get(1) == 80
        assert table.get(2) == 20
        assert table.get(3) is None

    def test_duplicate_keys_within_batch(self):
        table = HashTable(expected_keys=1)
        table.aggregate(np.asarray([7] * 100), np.ones(100, dtype=np.int64))
        assert table.get(7) == 100
        assert table.num_entries == 1

    def test_multiple_agg_columns(self):
        table = HashTable(expected_keys=2, num_aggs=2)
        keys = np.asarray([1, 2, 1])
        table.aggregate(keys, np.asarray([1, 2, 3]), agg=0)
        table.aggregate(keys, np.asarray([10, 20, 30]), agg=1)
        assert table.get(1, agg=0) == 4
        assert table.get(1, agg=1) == 40

    def test_agg_out_of_range(self):
        table = HashTable(expected_keys=2, num_aggs=1)
        with pytest.raises(ExecutionError):
            table.add_at(np.asarray([0]), 1, np.asarray([1]))

    def test_negative_keys_supported(self):
        table = HashTable(expected_keys=2)
        table.aggregate(np.asarray([-5, -5]), np.asarray([1, 2]))
        assert table.get(-5) == 3

    def test_null_key_is_ordinary(self):
        table = HashTable(expected_keys=2)
        table.aggregate(
            np.asarray([NULL_KEY, 1], dtype=np.int64), np.asarray([5, 6])
        )
        assert table.get(int(NULL_KEY)) == 5

    def test_sentinel_keys_rejected(self):
        table = HashTable(expected_keys=2)
        for bad in (EMPTY, TOMBSTONE):
            with pytest.raises(ExecutionError):
                table.insert_keys(np.asarray([bad], dtype=np.int64))

    def test_empty_batch(self):
        table = HashTable(expected_keys=2)
        table.aggregate(np.asarray([], dtype=np.int64), np.asarray([], dtype=np.int64))
        assert table.num_entries == 0


class TestLookup:
    def test_found_and_missing(self):
        table = HashTable(expected_keys=4)
        table.insert_keys(np.asarray([10, 20]))
        slots, found = table.lookup(np.asarray([10, 30, 20]))
        assert found.tolist() == [True, False, True]

    def test_contains(self):
        table = HashTable(expected_keys=4)
        table.insert_keys(np.asarray([1]))
        assert table.contains(np.asarray([1, 2])).tolist() == [True, False]

    def test_probe_statistics_accumulate(self):
        table = HashTable(expected_keys=64)
        table.insert_keys(np.arange(64))
        assert table.total_ops > 0
        assert table.mean_probes >= 1.0

    def test_collision_heavy_batch(self):
        # many keys in a small table force long probe chains
        table = HashTable(expected_keys=128)
        keys = np.arange(0, 256, 2)[:128]
        table.insert_keys(keys)
        assert table.contains(keys).all()
        assert not table.contains(keys + 1).any()


class TestDelete:
    def test_delete_removes_entries(self):
        table = HashTable(expected_keys=8)
        table.aggregate(np.arange(8), np.ones(8, dtype=np.int64))
        existed = table.delete(np.asarray([0, 1, 99]))
        assert existed == 2
        assert table.num_entries == 6
        assert table.get(0) is None

    def test_lookup_probes_past_tombstones(self):
        table = HashTable(expected_keys=8)
        keys = np.arange(16)
        table.insert_keys(keys)
        table.delete(keys[:8])
        assert table.contains(keys[8:]).all()

    def test_double_delete_is_idempotent(self):
        table = HashTable(expected_keys=4)
        table.insert_keys(np.asarray([1, 2]))
        assert table.delete(np.asarray([1])) == 1
        assert table.delete(np.asarray([1])) == 0
        assert table.num_entries == 1

    def test_items_excludes_deleted(self):
        table = HashTable(expected_keys=4)
        table.aggregate(np.asarray([1, 2, 3]), np.asarray([1, 1, 1]))
        table.delete(np.asarray([2]))
        keys, _ = table.items()
        assert keys.tolist() == [1, 3]


class TestItems:
    def test_items_sorted_by_key(self):
        table = HashTable(expected_keys=8)
        table.aggregate(np.asarray([5, 1, 9]), np.asarray([1, 2, 3]))
        keys, aggs = table.items()
        assert keys.tolist() == [1, 5, 9]
        assert aggs[:, 0].tolist() == [2, 1, 3]


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=-1000, max_value=1000),
            st.integers(min_value=-100, max_value=100),
        ),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=60, deadline=None)
def test_aggregate_matches_counter(pairs):
    """Property: the table agrees with a plain dict-based aggregation."""
    keys = np.asarray([k for k, _ in pairs], dtype=np.int64)
    deltas = np.asarray([d for _, d in pairs], dtype=np.int64)
    table = HashTable(expected_keys=len(set(keys.tolist())))
    table.aggregate(keys, deltas)
    expected = collections.Counter()
    for key, delta in pairs:
        expected[key] += delta
    got_keys, got_aggs = table.items()
    assert dict(zip(got_keys.tolist(), got_aggs[:, 0].tolist())) == dict(
        expected
    )


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_delete_then_lookup_consistency(data):
    """Property: membership after interleaved inserts and deletes."""
    universe = list(range(50))
    inserted = data.draw(st.lists(st.sampled_from(universe), max_size=60))
    deleted = data.draw(st.lists(st.sampled_from(universe), max_size=30))
    table = HashTable(expected_keys=50)
    if inserted:
        table.insert_keys(np.asarray(inserted, dtype=np.int64))
    if deleted:
        table.delete(np.asarray(deleted, dtype=np.int64))
    expected = set(inserted) - set(deleted)
    present = table.contains(np.asarray(universe, dtype=np.int64))
    assert {u for u, p in zip(universe, present) if p} == expected
