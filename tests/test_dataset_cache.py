"""Dataset cache: fingerprinting, both layers, and round-trip fidelity."""

import numpy as np
import pytest

from repro.datagen import microbench as mb
from repro.datagen import tpch
from repro.datagen.cache import (
    DatasetCache,
    dataset_fingerprint,
    load_dataset,
)
from repro.engine import Engine
from repro.engine.machine import PAPER_MACHINE
from repro.engine.program import results_equal
from repro.errors import DataGenError

SMALL = mb.MicrobenchConfig(num_rows=4_000, s_rows=64, c_cardinality=8)


def databases_equal(a, b):
    assert a.catalog.table_names == b.catalog.table_names
    for name in a.catalog.table_names:
        ta, tb = a.table(name), b.table(name)
        for ca in ta.iter_columns():
            cb = tb.column(ca.name)
            np.testing.assert_array_equal(
                np.asarray(ca.values), np.asarray(cb.values)
            )
            assert ca.logical_type == cb.logical_type
            assert ca.dictionary == cb.dictionary
            assert ca.scale == cb.scale


class TestFingerprint:
    def test_deterministic(self):
        assert dataset_fingerprint("microbench", SMALL) == (
            dataset_fingerprint("microbench", SMALL)
        )

    def test_config_change_invalidates(self):
        base = dataset_fingerprint("microbench", SMALL)
        for other in (
            mb.MicrobenchConfig(num_rows=4_001, s_rows=64, c_cardinality=8),
            mb.MicrobenchConfig(
                num_rows=4_000, s_rows=64, c_cardinality=8, seed=99
            ),
        ):
            assert dataset_fingerprint("microbench", other) != base

    def test_generator_name_in_key(self):
        a = dataset_fingerprint("microbench", SMALL)
        b = dataset_fingerprint("tpch", SMALL)
        assert a != b


class TestMemoryLayer:
    def test_miss_then_memory_hit_returns_same_object(self, tmp_path):
        cache = DatasetCache(cache_dir=tmp_path)
        first = cache.load("microbench", SMALL)
        assert cache.last_source == "generated"
        second = cache.load("microbench", SMALL)
        assert cache.last_source == "memory"
        assert second is first
        snap = cache.stats.snapshot()
        assert snap["misses"] == 1
        assert snap["memory_hits"] == 1
        assert snap["stores"] == 1

    def test_lru_eviction(self, tmp_path):
        cache = DatasetCache(cache_dir=tmp_path, memory_entries=1)
        cache.load("microbench", SMALL)
        cache.load(
            "microbench",
            mb.MicrobenchConfig(num_rows=4_096, s_rows=64, c_cardinality=8),
        )
        assert cache.stats.evictions == 1
        # evicted entry comes back from disk, not regeneration
        cache.load("microbench", SMALL)
        assert cache.last_source == "disk"


class TestDiskLayer:
    def test_fresh_cache_hits_disk(self, tmp_path):
        DatasetCache(cache_dir=tmp_path).load("microbench", SMALL)
        cache = DatasetCache(cache_dir=tmp_path)  # cold process stand-in
        db = cache.load("microbench", SMALL)
        assert cache.last_source == "disk"
        assert cache.stats.disk_hits == 1
        databases_equal(db, mb.generate(SMALL))

    def test_tpch_round_trip_preserves_foreign_keys(self, tmp_path):
        config = tpch.TpchConfig(scale_factor=0.001)
        DatasetCache(cache_dir=tmp_path).load("tpch", config)
        cache = DatasetCache(cache_dir=tmp_path)
        db = cache.load("tpch", config)
        assert cache.last_source == "disk"
        fresh = tpch.generate(config)
        databases_equal(db, fresh)
        machine = PAPER_MACHINE.scaled(config.machine_scale)
        from_disk = Engine(db, machine=machine, use_pool=False).execute(
            "Q6", "swole", workers=2
        )
        from_gen = Engine(fresh, machine=machine, use_pool=False).execute(
            "Q6", "swole", workers=2
        )
        assert results_equal(from_disk, from_gen)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DatasetCache(cache_dir=tmp_path)
        cache.load("microbench", SMALL)
        key = dataset_fingerprint("microbench", SMALL)
        (tmp_path / key / "meta.json").write_text("{not json")
        cold = DatasetCache(cache_dir=tmp_path)
        cold.load("microbench", SMALL)
        assert cold.last_source == "generated"

    def test_clear_drops_both_layers(self, tmp_path):
        cache = DatasetCache(cache_dir=tmp_path)
        cache.load("microbench", SMALL)
        cache.clear()
        assert not tmp_path.exists()
        cache.load("microbench", SMALL)
        assert cache.last_source == "generated"


class TestValidation:
    def test_unknown_generator(self, tmp_path):
        with pytest.raises(DataGenError, match="unknown dataset generator"):
            DatasetCache(cache_dir=tmp_path).load("nope")

    def test_wrong_config_type(self, tmp_path):
        with pytest.raises(DataGenError, match="expects a TpchConfig"):
            DatasetCache(cache_dir=tmp_path).load("tpch", SMALL)

    def test_bad_capacity(self, tmp_path):
        with pytest.raises(DataGenError):
            DatasetCache(cache_dir=tmp_path, memory_entries=0)


class TestProcessWideCache:
    def test_load_dataset_uses_isolated_dir(self):
        # the conftest fixture points REPRO_CACHE_DIR at a temp dir
        db = load_dataset("microbench", SMALL)
        again = load_dataset("microbench", SMALL)
        assert again is db
