"""Plan cache: keying, LRU eviction, counters, invalidation."""

import pytest

from repro.datagen import microbench as mb
from repro.engine.machine import PAPER_MACHINE
from repro.engine.plan_cache import (
    PlanCache,
    machine_fingerprint,
    plan_key,
    query_fingerprint,
)
from repro.errors import ReproError


def _program(name="p"):
    from repro.engine.program import CompiledQuery

    return CompiledQuery(
        name=name, strategy="hybrid", source="", _fn=lambda session: {}
    )


class TestKeys:
    def test_query_fingerprint_stable(self):
        assert query_fingerprint(mb.q1(30)) == query_fingerprint(mb.q1(30))

    def test_query_fingerprint_separates_constants(self):
        assert query_fingerprint(mb.q1(30)) != query_fingerprint(mb.q1(31))

    def test_tpch_names_addressed_directly(self):
        # Every TPC-H name now resolves to an operator tree and keys on
        # the IR fingerprint (same as an equivalent LogicalPlan passed
        # directly); only unregistered names fall back to name keying.
        from repro.plan.ops import plan_fingerprint
        from repro.tpch import logical_plan

        for name in ("Q1", "Q4", "Q13"):
            assert query_fingerprint(name) == plan_fingerprint(
                logical_plan(name)
            )
            assert query_fingerprint(name).startswith("ir:")
        assert query_fingerprint("Q99") == "tpch:Q99"

    def test_legacy_query_shares_ir_fingerprint(self):
        from repro.plan.ops import from_query, plan_fingerprint

        q = mb.q1(30)
        assert query_fingerprint(q) == plan_fingerprint(from_query(q))

    def test_machine_fingerprint_separates_scales(self):
        assert machine_fingerprint(PAPER_MACHINE) != machine_fingerprint(
            PAPER_MACHINE.scaled(0.01)
        )

    def test_plan_key_separates_strategy_and_tile(self):
        base = plan_key(mb.q1(30), "swole", PAPER_MACHINE, 1024)
        assert base != plan_key(mb.q1(30), "hybrid", PAPER_MACHINE, 1024)
        assert base != plan_key(mb.q1(30), "swole", PAPER_MACHINE, 4096)
        assert base == plan_key(mb.q1(30), "swole", PAPER_MACHINE, 1024)


class TestCacheBehaviour:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", _program())
        assert cache.get("k") is not None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_get_or_compile_counts_compilations(self):
        cache = PlanCache(capacity=4)
        calls = []

        def compile_fn():
            calls.append(1)
            return _program()

        first, was_hit = cache.get_or_compile("k", compile_fn)
        assert not was_hit
        second, was_hit = cache.get_or_compile("k", compile_fn)
        assert was_hit
        assert second is first
        assert len(calls) == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put("a", _program("a"))
        cache.put("b", _program("b"))
        assert cache.get("a") is not None  # refresh a; b is now LRU
        cache.put("c", _program("c"))
        assert cache.stats.evictions == 1
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_invalidate_clears_and_counts(self):
        cache = PlanCache(capacity=4)
        cache.put("a", _program())
        cache.invalidate()
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
        assert cache.get("a") is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            PlanCache(capacity=0)

    def test_snapshot_shape(self):
        stats = PlanCache(capacity=2).stats
        snap = stats.snapshot()
        assert set(snap) == {
            "hits", "misses", "evictions", "invalidations", "hit_rate"
        }
