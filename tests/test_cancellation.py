"""Cooperative cancellation: tokens, the morsel cursor, and the Engine.

The contract: a :class:`CancelToken` carries a monotonic deadline plus
an explicit cancel flag; the morsel batch checks it at every claim, so
a timed-out parallel run stops within one morsel's worth of work and
raises :class:`QueryTimeout` naming the elapsed time; ``Engine.execute``
accepts either a relative ``deadline=`` budget or an existing token.
"""

import time

import pytest

from repro.datagen import microbench as mb
from repro.engine import CancelToken, Engine, MorselBatch
from repro.engine.pool import drain_with_ephemeral_threads
from repro.engine.program import results_equal
from repro.engine.session import Session
from repro.errors import QueryCancelled, QueryTimeout, ReproError


class SlowPlan:
    """A fake parallel plan whose morsels take real wall time."""

    def __init__(self, sleep=0.02):
        self.sleep = sleep
        self.ran = 0

    def partial(self, session, ctx, lo, hi):
        time.sleep(self.sleep)
        self.ran += 1
        return {"rows": hi - lo}


def slow_batch(token, n_morsels=50, workers=2, sleep=0.02):
    plan = SlowPlan(sleep=sleep)
    morsels = [(i * 10, (i + 1) * 10) for i in range(n_morsels)]
    return (
        MorselBatch(
            Session(), plan, None, morsels, "slow", workers, cancel=token
        ),
        plan,
    )


class TestCancelToken:
    def test_no_deadline_never_expires(self):
        token = CancelToken()
        assert not token.expired()
        assert not token.stop_requested()
        assert token.budget() is None
        assert token.remaining() is None
        token.check()  # no-op

    def test_after_builds_relative_budget(self):
        token = CancelToken.after(10.0)
        assert token.budget() == pytest.approx(10.0, abs=0.1)
        assert 0 < token.remaining() <= 10.0
        assert not token.expired()

    def test_after_rejects_non_positive_budget(self):
        with pytest.raises(QueryTimeout):
            CancelToken.after(0.0)
        with pytest.raises(QueryTimeout):
            CancelToken.after(-1.0)

    def test_expiry_is_monotonic_deadline(self):
        token = CancelToken(deadline=time.monotonic() - 0.01)
        assert token.expired()
        assert token.stop_requested()
        assert token.remaining() < 0

    def test_cancel_flag(self):
        token = CancelToken.after(60.0)
        assert not token.cancelled
        token.cancel()
        token.cancel()  # idempotent
        assert token.cancelled
        assert token.stop_requested()
        assert not token.expired()  # cancel is not expiry

    def test_check_raises_timeout_with_elapsed(self):
        token = CancelToken(deadline=time.monotonic() - 0.01)
        with pytest.raises(QueryTimeout, match=r"elapsed") as info:
            token.check("uQ1")
        assert "uQ1" in str(info.value)
        assert info.value.elapsed >= 0.0

    def test_check_raises_cancelled(self):
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelled, match=r"cancelled"):
            token.check()


class TestMorselCursorStops:
    def test_expired_token_stops_before_any_morsel(self):
        token = CancelToken(deadline=time.monotonic() - 1.0)
        batch, plan = slow_batch(token)
        with pytest.raises(QueryTimeout, match=r"0/50 morsels"):
            drain_with_ephemeral_threads(batch)
        assert plan.ran == 0
        assert batch.cancelled

    def test_deadline_stops_mid_batch_naming_elapsed(self):
        # 50 morsels x 20 ms each on 2 workers would take ~500 ms; the
        # 80 ms budget must stop the cursor long before the end.
        token = CancelToken.after(0.08)
        batch, plan = slow_batch(token)
        with pytest.raises(
            QueryTimeout, match=r"deadline .* morsels .*s elapsed"
        ) as info:
            drain_with_ephemeral_threads(batch)
        assert 0 < plan.ran < 50
        assert info.value.elapsed >= 0.08
        assert info.value.deadline == pytest.approx(0.08, abs=0.01)

    def test_explicit_cancel_stops_mid_batch(self):
        token = CancelToken()
        batch, plan = slow_batch(token, sleep=0.01)

        original = plan.partial

        def cancelling(session, ctx, lo, hi):
            value = original(session, ctx, lo, hi)
            if plan.ran >= 3:
                token.cancel()
            return value

        plan.partial = cancelling
        with pytest.raises(QueryCancelled, match=r"cancelled after"):
            drain_with_ephemeral_threads(batch)
        assert plan.ran < 50

    def test_completed_morsels_keep_their_values(self):
        token = CancelToken.after(0.08)
        batch, _ = slow_batch(token)
        with pytest.raises(QueryTimeout):
            drain_with_ephemeral_threads(batch)
        done = [v for v in batch.values if v is not None]
        assert done  # the work before the deadline is recorded
        assert all(v == {"rows": 10} for v in done)


class TestEnginePlumbing:
    def test_deadline_and_cancel_are_exclusive(self, micro_db):
        with Engine(db=micro_db, workers=2) as engine:
            with pytest.raises(ReproError, match=r"not both"):
                engine.execute(
                    mb.q1(30),
                    "swole",
                    deadline=1.0,
                    cancel=CancelToken(),
                )

    def test_generous_deadline_completes_normally(self, micro_db):
        with Engine(db=micro_db, workers=2) as engine:
            plain = engine.execute(mb.q1(30), "swole", workers=2)
            bounded = engine.execute(
                mb.q1(30), "swole", workers=2, deadline=60.0
            )
            assert bounded.value == plain.value

    def test_expired_token_raises_before_running(self, micro_db):
        with Engine(db=micro_db, workers=2) as engine:
            token = CancelToken(deadline=time.monotonic() - 0.01)
            with pytest.raises(QueryTimeout):
                engine.execute(mb.q1(30), "swole", workers=2, cancel=token)
            # serial runs pre-check the same token
            with pytest.raises(QueryTimeout):
                engine.execute(mb.q1(30), "swole", workers=1, cancel=token)

    def test_cancelled_token_raises_query_cancelled(self, micro_db):
        with Engine(db=micro_db, workers=2) as engine:
            token = CancelToken()
            token.cancel()
            with pytest.raises(QueryCancelled):
                engine.execute(mb.q1(30), "swole", workers=2, cancel=token)

    def test_engine_usable_after_timeout(self, micro_db):
        with Engine(db=micro_db, workers=2) as engine:
            token = CancelToken(deadline=time.monotonic() - 0.01)
            with pytest.raises(QueryTimeout):
                engine.execute(mb.q2(40), "swole", workers=2, cancel=token)
            result = engine.execute(mb.q2(40), "swole", workers=2)
            serial = engine.execute(mb.q2(40), "swole", workers=1)
            assert results_equal(result, serial)

    def test_timeout_is_execution_error_subclass(self):
        from repro.errors import ExecutionError

        assert issubclass(QueryTimeout, ExecutionError)
        assert issubclass(QueryCancelled, ExecutionError)
