"""Edge cases of the new pipeline kernels (Q4/Q5/Q13/Q19 vocabulary).

Every test builds a degenerate variant of one of the new plan shapes
with :class:`~repro.plan.builder.PlanBuilder` and pins the answer under
all four strategies against a direct NumPy computation: an anti-join
whose build side filters to nothing, an outer groupjoin where every
build row is unmatched (Q13's zero-order bucket taken to the extreme),
a disjunctive join with one empty-bitmap disjunct, and morsel-parallel
vs serial byte-identity for the plans exercising each new physical op.
"""

import numpy as np
import pytest

from repro.codegen.pipeline import compile_pipeline
from repro.engine import Engine, ExecutionKnobs, Session
from repro.engine.program import results_equal
from repro.plan.builder import PlanBuilder, scan
from repro.plan.expressions import And, Col, Const, DictEq
from repro.plan.logical import AggSpec
from repro.tpch import STRATEGIES, logical_plan

#: A predicate no row satisfies (all stored columns are non-negative).
IMPOSSIBLE = Col("l_commitdate") < Const(-1)


def _run_all(plan, db):
    """The plan's result under every strategy, asserting byte-identity."""
    results = {
        strategy: compile_pipeline(plan, db, strategy).run(Session())
        for strategy in STRATEGIES
    }
    baseline = results["interpreter"]
    for strategy, result in results.items():
        assert results_equal(result, baseline), strategy
    return baseline


class TestEmptyAntiJoinBuild:
    """Q4's shape with a build side that filters to zero lineitems."""

    def _plan(self, anti):
        kind = "anti" if anti else "exists"
        return (
            PlanBuilder.scan("orders")
            .exists_join(
                scan("lineitem").filter(IMPOSSIBLE),
                pk_column="o_orderkey",
                fk_column="l_orderkey",
                anti=anti,
            )
            .group_agg(
                AggSpec("count", None, name="order_count"),
                key="o_orderpriority",
            )
            .build(f"q4-empty-build-{kind}")
        )

    def test_anti_join_keeps_every_probe_row(self, tpch_db):
        result = _run_all(self._plan(anti=True), tpch_db)
        priorities = tpch_db.table("orders")["o_orderpriority"]
        keys, counts = np.unique(priorities, return_counts=True)
        assert np.array_equal(np.asarray(result.value["keys"]), keys)
        assert np.array_equal(
            np.asarray(result.value["aggs"])[:, 0], counts
        )

    def test_exists_join_keeps_nothing(self, tpch_db):
        result = _run_all(self._plan(anti=False), tpch_db)
        assert len(np.asarray(result.value["keys"])) == 0


class TestAllUnmatchedOuterGroupJoin:
    """Q13's shape with an empty probe: every customer counts zero."""

    def _plan(self):
        return (
            PlanBuilder.scan("orders")
            .filter(Col("o_orderdate") < Const(-1))
            .outer_group_join(
                "customer",
                fk_column="o_custkey",
                pk_column="c_custkey",
                count_name="c_count",
            )
            .group_agg(
                AggSpec("count", None, name="custdist"), key="c_count"
            )
            .build("q13-all-unmatched")
        )

    def test_single_zero_bucket_holds_all_customers(self, tpch_db):
        result = _run_all(self._plan(), tpch_db)
        keys = np.asarray(result.value["keys"])
        aggs = np.asarray(result.value["aggs"])
        assert np.array_equal(keys, [0])
        assert aggs[0, 0] == tpch_db.table("customer").num_rows


class TestEmptyDisjunctBitmap:
    """Q19's shape where one disjunct's build predicate matches no part."""

    REVENUE = Col("l_extendedprice") * (Const(100) - Col("l_discount"))

    def _plan(self):
        disjuncts = (
            (
                And(
                    [
                        DictEq("p_brand", "Brand#12"),
                        And([Col("p_size") >= 1, Col("p_size") <= 5]),
                    ]
                ),
                And([Col("l_quantity") >= 1, Col("l_quantity") <= 11]),
            ),
            # p_size tops out far below 999: this bitmap is all zeros.
            (
                And([Col("p_size") >= 999]),
                And([Col("l_quantity") >= 0]),
            ),
        )
        return (
            PlanBuilder.scan("lineitem")
            .disjunct_join(
                "part",
                fk_column="l_partkey",
                pk_column="p_partkey",
                disjuncts=disjuncts,
            )
            .group_agg(AggSpec("sum", self.REVENUE, name="revenue"))
            .build("q19-empty-disjunct")
        )

    def test_empty_disjunct_contributes_nothing(self, tpch_db):
        result = _run_all(self._plan(), tpch_db)

        part = tpch_db.table("part")
        line = tpch_db.table("lineitem")
        brand = part.column("p_brand").code_for("Brand#12")
        size = part["p_size"]
        build_hit = (part["p_brand"] == brand) & (size >= 1) & (size <= 5)
        assert not ((size >= 999).any()), "fixture grew; pick a new bound"

        offsets = tpch_db.fk_index("lineitem", "l_partkey").offsets
        qty = line["l_quantity"]
        hit = build_hit[offsets] & (qty >= 1) & (qty <= 11)
        expected = int(
            np.sum(
                line["l_extendedprice"][hit].astype(np.int64)
                * (100 - line["l_discount"][hit].astype(np.int64))
            )
        )
        assert int(result.value["revenue"]) == expected


class TestMorselParallelByteIdentity:
    """Parallel and serial runs agree bit for bit on every new-op plan.

    Q4 exercises ExistsBitmapProbe/HashSemiProbe, Q5 the carried-column
    join chain (HashJoinCarryProbe, CarriedGather), Q19 the disjunctive
    probes (DisjunctBitmapProbe/DisjunctIndexProbe); Q13's final
    pipeline is deliberately serial-only (the outer groupjoin mutates
    shared build state) and pins the serial fallback.
    """

    @pytest.mark.parametrize("name", ("Q4", "Q5", "Q13", "Q19"))
    @pytest.mark.parametrize("strategy", ("datacentric", "hybrid", "swole"))
    def test_parallel_matches_serial(self, tpch_db, name, strategy):
        plan = logical_plan(name)
        with Engine(
            db=tpch_db,
            workers=4,
            knobs=ExecutionKnobs(morsel_rows=1500),
        ) as engine:
            serial = engine.execute(plan, strategy, workers=1)
            parallel = engine.execute(plan, strategy, workers=4)
            assert results_equal(serial, parallel), (name, strategy)

    def test_new_query_parallel_plans_fan_out(self, tpch_db):
        # The point of the splittable-op whitelist: the lineitem-driven
        # plans really run multi-morsel (not just fall back to one
        # worker). Q4's final pipeline scans orders — 3,000 rows at
        # this scale, under the executor's minimum morsel size — so it
        # is covered by the byte-identity matrix above instead.
        with Engine(
            db=tpch_db,
            workers=4,
            knobs=ExecutionKnobs(morsel_rows=1500),
        ) as engine:
            for name in ("Q5", "Q19"):
                result = engine.execute(logical_plan(name), "swole", workers=4)
                assert result.metrics.parallel, name
                assert result.metrics.morsels > 1, name
