"""Tests for the SWOLE technique pipelines: correctness plus the
access-pattern contracts that make them "access-aware".
"""

import numpy as np
import pytest

from repro.codegen import compile_query
from repro.core import planner as P
from repro.core.swole import compile_swole
from repro.datagen import microbench as mb
from repro.engine import Session, reference
from repro.engine.events import CondRead, RandomAccess, SeqRead
from repro.engine.hashtable import NULL_KEY
from repro.engine.machine import PAPER_MACHINE
from repro.plan.logical import QueryStats


def run_events(compiled, kind):
    result = compiled.run(Session())
    return result, [
        e for _, e, _ in result.report.events if isinstance(e, kind)
    ]


def force_stats(query, db, **overrides):
    """Stats that force a particular planner decision for testing."""
    from repro.plan.logical import sample_stats

    stats = sample_stats(query, db.all_data())
    for key, value in overrides.items():
        setattr(stats, key, value)
    return stats


class TestValueMasking:
    def test_no_conditional_reads_on_aggregate_columns(self, micro_db):
        compiled = compile_swole(
            mb.q1(50), micro_db, force=P.VALUE_MASKING
        )
        result, cond_reads = run_events(compiled, CondRead)
        agg_arrays = {e.array for e in cond_reads}
        assert "r_a" not in agg_arrays and "r_b" not in agg_arrays

    def test_flat_cost_across_selectivity(self, micro_db):
        session = Session()
        costs = [
            compile_swole(mb.q1(sel), micro_db, force=P.VALUE_MASKING)
            .run(session)
            .cycles
            for sel in (5, 50, 95)
        ]
        assert max(costs) / min(costs) < 1.05

    def test_answers_match_reference(self, micro_db):
        for sel in (0, 33, 100):
            query = mb.q1(sel)
            compiled = compile_swole(query, micro_db, force=P.VALUE_MASKING)
            expected = reference.evaluate(query, micro_db)
            assert compiled.run(Session()).value == expected

    def test_grouped_variant_drops_masked_only_groups(self, micro_db):
        query = mb.q2(10)
        compiled = compile_swole(query, micro_db, force=P.VALUE_MASKING)
        result = compiled.run(Session())
        expected = reference.evaluate(query, micro_db)
        assert np.array_equal(result.value["keys"], expected["keys"])
        assert np.array_equal(result.value["aggs"], expected["aggs"])


class TestKeyMasking:
    def test_answers_match_reference(self, micro_db):
        query = mb.q2(40)
        compiled = compile_swole(query, micro_db, force=P.KEY_MASKING)
        expected = reference.evaluate(query, micro_db)
        result = compiled.run(Session())
        assert np.array_equal(result.value["keys"], expected["keys"])
        assert np.array_equal(result.value["aggs"], expected["aggs"])

    def test_null_key_never_in_output(self, micro_db):
        compiled = compile_swole(mb.q2(1), micro_db, force=P.KEY_MASKING)
        result = compiled.run(Session())
        assert NULL_KEY not in result.value["keys"]

    def test_hash_accesses_marked_hot_at_low_selectivity(self, micro_db):
        compiled = compile_swole(mb.q2(10), micro_db, force=P.KEY_MASKING)
        _, randoms = run_events(compiled, RandomAccess)
        hot = [e for e in randoms if e.hot_fraction > 0.5]
        assert hot, "masked keys should hit the throwaway entry"

    def test_aggregate_columns_read_sequentially(self, micro_db):
        compiled = compile_swole(mb.q2(30), micro_db, force=P.KEY_MASKING)
        result, seq_reads = run_events(compiled, SeqRead)
        arrays = {e.array for e in seq_reads}
        assert {"r_a", "r_b", "r_c"} <= arrays


class TestPositionalBitmapSemijoin:
    def test_matches_hash_semijoin(self, micro_db):
        query = mb.q4(30, 60)
        swole = compile_swole(query, micro_db)
        hybrid = compile_query(query, micro_db, "hybrid")
        session = Session()
        assert swole.run(session).value == hybrid.run(session).value

    def test_no_hash_table_events(self, micro_db):
        compiled = compile_swole(mb.q4(30, 60), micro_db)
        _, randoms = run_events(compiled, RandomAccess)
        kinds = {e.kind for e in randoms}
        assert "ht_insert" not in kinds and "ht_lookup" not in kinds
        assert any(k.startswith("bitmap") for k in kinds) or "bitmap_test" in kinds

    def test_both_build_modes_correct(self, micro_db):
        query = mb.q4(50, 50)
        expected = reference.evaluate(query, micro_db)
        from repro.core.positional_bitmap import semijoin_pipeline

        for mode in (P.BITMAP_MASK, P.BITMAP_OFFSETS):
            session = Session()
            value = semijoin_pipeline(
                session, micro_db, query, mode, P.VALUE_MASKING
            )
            assert value == expected

    def test_hybrid_aggregation_fallback_correct(self, micro_db):
        query = mb.q4(50, 50)
        expected = reference.evaluate(query, micro_db)
        from repro.core.positional_bitmap import semijoin_pipeline

        session = Session()
        value = semijoin_pipeline(
            session, micro_db, query, P.BITMAP_MASK, P.HYBRID
        )
        assert value == expected


class TestEagerAggregation:
    def test_matches_traditional_groupjoin(self, micro_db):
        query = mb.q5(40)
        from repro.core.eager_aggregation import groupjoin_pipeline

        session = Session()
        value = groupjoin_pipeline(session, micro_db, query)
        expected = reference.evaluate(query, micro_db)
        assert np.array_equal(value["keys"], expected["keys"])
        assert np.array_equal(value["aggs"], expected["aggs"])

    def test_deletions_charged(self, micro_db):
        from repro.core.eager_aggregation import groupjoin_pipeline

        session = Session()
        groupjoin_pipeline(session, micro_db, mb.q5(30))
        kinds = {
            e.kind
            for _, e, _ in session.tracer.report.events
            if isinstance(e, RandomAccess)
        }
        assert "ht_delete" in kinds

    def test_with_probe_side_predicate(self, micro_db):
        """EA composes with key masking when the probe side filters."""
        from repro.core.eager_aggregation import groupjoin_pipeline
        from repro.plan.expressions import Col, Const
        from repro.plan.logical import AggSpec, JoinSpec, Query

        query = Query(
            table="R",
            predicate=Col("r_x") < Const(40),
            aggregates=(AggSpec("sum", Col("r_a"), name="sum"),),
            group_by="r_fk",
            join=JoinSpec(
                build_table="S",
                fk_column="r_fk",
                pk_column="s_pk",
                build_predicate=Col("s_x") < Const(60),
            ),
            name="ea-with-pred",
        )
        session = Session()
        value = groupjoin_pipeline(session, micro_db, query)
        expected = reference.evaluate(query, micro_db)
        assert np.array_equal(value["keys"], expected["keys"])
        assert np.array_equal(value["aggs"], expected["aggs"])


class TestAccessMerging:
    def test_merged_column_read_once(self, micro_db):
        query = mb.q3(50, "r_x")
        compiled = compile_swole(query, micro_db, force=P.VALUE_MASKING)
        _, seq_reads = run_events(compiled, SeqRead)
        reads_of_x = [e for e in seq_reads if e.array == "r_x"]
        assert len(reads_of_x) == 1

    def test_merging_reduces_cost(self, micro_db):
        from repro.core import access_merging

        query = mb.q3(50, "r_x")
        assert access_merging.merging_opportunity(query) == ("r_x",)
        assert access_merging.merged_read_set(query) == set()
        assert access_merging.merged_read_set(query, enabled=False) is None
        no_reuse = mb.q1(50)
        assert access_merging.merged_read_set(no_reuse) is None
        assert access_merging.saved_reads(query, 100) == 100


class TestPlanNotes:
    def test_compiled_query_carries_plan(self, micro_db):
        compiled = compile_swole(mb.q1(50), micro_db)
        assert "aggregation=" in compiled.notes["plan"]
        assert compiled.notes["estimates"]

    def test_force_overrides_planner(self, micro_db):
        compiled = compile_swole(mb.q1(50, "div"), micro_db, force=P.VALUE_MASKING)
        assert "value_masking" in compiled.notes["plan"]
