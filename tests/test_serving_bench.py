"""Serving benchmark harness: report shape, overload demo, loadgen math."""

import json

import pytest

from repro.bench.serving import (
    WORKLOADS,
    LoadgenResult,
    drive_load,
    effective_concurrency,
    run_serving_bench,
)
from repro.server import QueryResponse
from repro.server.protocol import STATUS_ERROR, STATUS_OK, ErrorInfo


def tiny_report(tmp_path, **overrides):
    kwargs = dict(
        rows=20_000,
        sf=0.002,
        concurrency=2,
        queue_depth=8,
        clients=3,
        requests_per_client=4,
        deadline=5.0,
        rounds=1,
        strategies=("swole",),
        out_path=str(tmp_path / "BENCH_serving.json"),
        verbose=False,
    )
    kwargs.update(overrides)
    return run_serving_bench(**kwargs)


class TestDriveLoad:
    def test_counters_classify_responses(self):
        script = iter(
            [
                QueryResponse(id="1", status=STATUS_OK, value=1.0),
                QueryResponse(
                    id="2",
                    status=STATUS_ERROR,
                    error=ErrorInfo(
                        code="queue_full", message="", retry_after=0.001
                    ),
                ),
                QueryResponse(
                    id="3",
                    status=STATUS_ERROR,
                    error=ErrorInfo(code="deadline_exceeded", message=""),
                ),
                QueryResponse(
                    id="4",
                    status=STATUS_ERROR,
                    error=ErrorInfo(code="execution_failed", message=""),
                ),
            ]
        )
        result = LoadgenResult(
            scenario="t", workload="w", strategy="s",
            clients=1, concurrency=1, queue_depth=1,
        )
        drive_load(
            lambda *_: next(script),
            WORKLOADS["micro-q1q2"],
            "swole",
            clients=1,
            requests_per_client=4,
            deadline=None,
            result=result,
        )
        assert result.issued == 4
        assert (result.ok, result.shed, result.timed_out, result.failed) == (
            1, 1, 1, 1,
        )
        assert result.shed_rate == 0.25
        assert result.deadline_miss_rate == 0.25

    def test_late_ok_counts_as_deadline_miss(self):
        response = QueryResponse(
            id="1",
            status=STATUS_OK,
            value=1.0,
            metrics={"deadline_missed": True},
        )
        result = LoadgenResult(
            scenario="t", workload="w", strategy="s",
            clients=1, concurrency=1, queue_depth=1,
        )
        drive_load(
            lambda *_: response,
            WORKLOADS["micro-q1q2"],
            "swole",
            clients=1,
            requests_per_client=2,
            deadline=10.0,
            result=result,
        )
        assert result.ok == 2
        assert result.completed_late == 2
        assert result.deadline_miss_rate == 1.0


class TestInProcessBench:
    def test_report_shape_and_zero_failures(self, tmp_path):
        out = tmp_path / "BENCH_serving.json"
        report = tiny_report(tmp_path)

        assert report["bench"] == "serving"
        assert report["config"]["transport"] == "in-process"
        assert report["failures"] == 0

        # serial + served per (workload, strategy): 2 workloads x 1
        # strategy x 2 scenarios, plus nothing else.
        scenarios = report["scenarios"]
        assert {s["scenario"] for s in scenarios} == {"serial", "served"}
        assert len(scenarios) == 4
        for scenario in scenarios:
            assert scenario["issued"] > 0
            assert scenario["failed"] == 0
            assert scenario["p95_ms"] >= scenario["p50_ms"] >= 0.0

        assert len(report["speedups"]) == 2
        for entry in report["speedups"]:
            assert entry["serial_qps"] > 0
            assert entry["served_qps"] > 0

        # The overload demo sheds without crashing: every rejection is
        # structured, nothing fails, nothing hangs.
        shed_demo = report["shedding"]["loadgen"]
        assert shed_demo["scenario"] == "overload"
        assert shed_demo["shed"] > 0
        assert shed_demo["failed"] == 0
        assert (
            shed_demo["ok"]
            + shed_demo["shed"]
            + shed_demo["timed_out"]
            == shed_demo["issued"]
        )
        assert report["shedding"]["service_stats"]["shed"] > 0

        written = json.loads(out.read_text())
        assert written["failures"] == 0

    def test_seed_is_recorded_and_threaded(self, tmp_path):
        report = tiny_report(tmp_path, seed=123)
        assert report["config"]["seed"] == 123

    def test_service_stats_accompany_served_scenarios(self, tmp_path):
        report = tiny_report(tmp_path)
        stats = report["service_stats"]
        assert len(stats) == 2
        for snap in stats:
            assert snap["submitted"] >= snap["completed"] > 0
            assert snap["workload"] in WORKLOADS

    def test_rounds_keep_best_and_record_all(self, tmp_path):
        report = tiny_report(tmp_path, rounds=2)
        assert report["config"]["rounds"] == 2
        # One kept (best) scenario pair per cell, regardless of rounds.
        assert len(report["scenarios"]) == 4
        for entry in report["speedups"]:
            assert len(entry["serial_qps_rounds"]) == 2
            assert len(entry["served_qps_rounds"]) == 2
            assert entry["serial_qps"] == max(entry["serial_qps_rounds"])
            assert entry["served_qps"] == max(entry["served_qps_rounds"])

    def test_rounds_must_be_positive(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match=r"rounds"):
            tiny_report(tmp_path, rounds=0)

    def test_service_threads_capped_at_host_cores(self, tmp_path):
        import os

        cores = os.cpu_count() or 1
        assert effective_concurrency(1) == 1
        assert effective_concurrency(10_000) == cores
        report = tiny_report(tmp_path, concurrency=10_000)
        assert report["config"]["concurrency"] == 10_000
        assert report["config"]["service_threads"] == cores
        served = [
            s for s in report["scenarios"] if s["scenario"] == "served"
        ]
        assert all(s["concurrency"] == cores for s in served)


class TestConnectValidation:
    def test_bad_address_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match=r"host:port"):
            run_serving_bench(
                connect="localhost", out_path=None, verbose=False
            )

    def test_unknown_workload_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match=r"unknown workload"):
            run_serving_bench(
                connect="127.0.0.1:1",
                connect_workload="nope",
                out_path=None,
                verbose=False,
            )
