"""TCP transport: round trips, stats scrapes, malformed input,
graceful stop."""

import json
import socket

import pytest

from repro.datagen import microbench as mb
from repro.engine import Engine
from repro.errors import ReproError
from repro.obs import MetricsRegistry
from repro.server import QueryService, ServiceClient, TcpQueryServer
from repro.server.protocol import encode_value


@pytest.fixture()
def served_engine(micro_db):
    engine = Engine(db=micro_db, workers=2)
    service = QueryService(engine, concurrency=2, queue_depth=8)
    server = TcpQueryServer(service, port=0).start()
    yield engine, server
    server.stop(timeout=10.0)
    engine.shutdown()


class TestRoundTrip:
    def test_wire_answer_matches_library_answer(self, served_engine):
        engine, server = served_engine
        direct = engine.execute(mb.q1(30, "mul"), "swole", workers=1)
        with ServiceClient(server.host, server.port) as client:
            response = client.request(
                {"micro": "q1", "args": {"sel": 30, "op": "mul"}},
                strategy="swole",
            )
        assert response.ok
        assert response.value == encode_value(direct.value)
        assert response.metrics["service_seconds"] > 0.0

    def test_requests_on_one_connection_answer_in_order(self, served_engine):
        _, server = served_engine
        with ServiceClient(server.host, server.port) as client:
            ids = []
            for sel in (10, 30, 50):
                response = client.request(
                    {"micro": "q2", "args": {"sel": sel}},
                    strategy="swole",
                    id=f"sel-{sel}",
                )
                assert response.ok
                ids.append(response.id)
            assert ids == ["sel-10", "sel-30", "sel-50"]

    def test_concurrent_connections(self, served_engine):
        _, server = served_engine
        clients = [
            ServiceClient(server.host, server.port) for _ in range(4)
        ]
        try:
            responses = [
                client.request(
                    {"micro": "q1", "args": {"sel": 30}}, strategy="swole"
                )
                for client in clients
            ]
            assert all(r.ok for r in responses)
            assert all(r.value == responses[0].value for r in responses)
        finally:
            for client in clients:
                client.close()


class TestStats:
    @pytest.fixture()
    def observed_server(self, micro_db):
        registry = MetricsRegistry()
        engine = Engine(db=micro_db, workers=2, registry=registry)
        service = QueryService(
            engine, concurrency=2, queue_depth=8, registry=registry
        )
        server = TcpQueryServer(service, port=0).start()
        yield server
        server.stop(timeout=10.0)
        engine.shutdown()

    def test_stats_round_trip(self, observed_server):
        server = observed_server
        with ServiceClient(server.host, server.port) as client:
            assert client.request(
                {"micro": "q1", "args": {"sel": 30}}, strategy="swole"
            ).ok
            snapshot = client.stats()
        assert isinstance(snapshot, dict)
        sources = snapshot["sources"]
        # The engine and service wired their stats islands in.
        assert "hit_rate" in sources["plan_cache"]
        assert "utilization" in sources["pool"]
        assert "queue_depth" in sources["service"]
        assert sources["service"]["completed"] >= 1
        # The query left per-strategy counters and span timings behind,
        # labelled with the backend it ran on.
        counters = snapshot["counters"]
        assert (
            counters["queries_total{backend=vectorized,strategy=swole}"]
            >= 1
        )
        hist_keys = list(snapshot["histograms"])
        assert any("stage=serve" in k for k in hist_keys)
        assert any("stage=compile" in k for k in hist_keys)

    def test_stats_raw_wire_op(self, observed_server):
        server = observed_server
        with socket.create_connection(server.address, timeout=5.0) as conn:
            conn.sendall(b'{"op": "stats", "id": "scrape-1"}\n')
            reply = json.loads(conn.makefile("rb").readline())
        assert reply["id"] == "scrape-1"
        assert reply["status"] == "ok"
        assert "counters" in reply["value"]
        assert reply["value"]["counters"]["stats_requests_total"] == 1

    def test_stats_counters_monotonic(self, observed_server):
        server = observed_server
        with ServiceClient(server.host, server.port) as client:
            first = client.stats()
            assert client.request(
                {"micro": "q2", "args": {"sel": 50}}, strategy="swole"
            ).ok
            second = client.stats()
        for name, value in first["counters"].items():
            assert second["counters"][name] >= value, name
        assert (
            second["counters"]["stats_requests_total"]
            > first["counters"]["stats_requests_total"]
        )

    def test_unknown_op_gets_bad_request(self, observed_server):
        server = observed_server
        with socket.create_connection(server.address, timeout=5.0) as conn:
            conn.sendall(b'{"op": "selfdestruct"}\n')
            reply = conn.makefile("rb").readline()
        assert b'"bad_request"' in reply


class TestConnectionTelemetry:
    def test_client_reset_is_counted_not_swallowed(self, micro_db):
        # Regression: a client that dies with a TCP RST mid-connection
        # used to vanish into a bare ``except OSError: pass`` — no
        # counter, no error-log line. The reset must now surface as
        # ``tcp_stop_errors_total{site=conn_read}`` plus a ``tcp.conn``
        # error-log entry.
        import struct
        import time

        registry = MetricsRegistry()
        engine = Engine(db=micro_db, workers=1, registry=registry)
        service = QueryService(
            engine, concurrency=1, registry=registry, own_engine=True
        )
        server = TcpQueryServer(service, port=0).start()
        try:
            conn = socket.create_connection(server.address, timeout=5.0)
            reader = conn.makefile("rb")
            conn.sendall(
                b'{"id": "warm", "query": '
                b'{"micro": "q1", "args": {"sel": 30}}, '
                b'"strategy": "swole"}\n'
            )
            assert b'"status":"ok"' in reader.readline()
            # SO_LINGER(on, 0): closing sends RST instead of FIN, so
            # the server's blocking read fails with ECONNRESET. The
            # makefile reader holds a reference to the fd — it must be
            # closed too or the socket never actually closes.
            conn.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            reader.close()
            conn.close()

            counter = registry.counter(
                "tcp_stop_errors_total", site="conn_read"
            )
            deadline = time.monotonic() + 5.0
            while counter.value == 0:
                assert time.monotonic() < deadline, (
                    "connection reset never reached the counter"
                )
                time.sleep(0.01)
            entries = registry.error_log.snapshot()["entries"]
            assert any(
                e["source"] == "tcp.conn" and "conn_read" in e["message"]
                for e in entries
            )
        finally:
            server.stop(timeout=10.0)


class TestBadInput:
    def test_malformed_json_line_gets_bad_request(self, served_engine):
        _, server = served_engine
        with socket.create_connection(server.address, timeout=5.0) as conn:
            conn.sendall(b"{this is not json\n")
            reply = conn.makefile("rb").readline()
        assert b'"bad_request"' in reply

    def test_request_missing_query_gets_bad_request(self, served_engine):
        _, server = served_engine
        with socket.create_connection(server.address, timeout=5.0) as conn:
            conn.sendall(b'{"id": "x"}\n')
            reply = conn.makefile("rb").readline()
        assert b'"bad_request"' in reply

    def test_connection_survives_a_bad_line(self, served_engine):
        _, server = served_engine
        with socket.create_connection(server.address, timeout=5.0) as conn:
            reader = conn.makefile("rb")
            conn.sendall(b"garbage\n")
            assert b'"bad_request"' in reader.readline()
            conn.sendall(
                b'{"id": "ok1", "query": '
                b'{"micro": "q1", "args": {"sel": 30}}, '
                b'"strategy": "swole"}\n'
            )
            assert b'"status":"ok"' in reader.readline()


class TestLifecycle:
    def test_stop_is_graceful_and_idempotent(self, micro_db):
        engine = Engine(db=micro_db, workers=1)
        service = QueryService(engine, concurrency=1, own_engine=True)
        server = TcpQueryServer(service, port=0).start()
        with ServiceClient(server.host, server.port) as client:
            assert client.request(
                {"micro": "q1", "args": {"sel": 30}}, strategy="swole"
            ).ok
        report = server.stop(timeout=10.0)
        assert report.drained
        assert report.errors == []
        assert report.unjoined_threads == []
        assert report.clean
        server.stop(timeout=10.0)  # second stop is a no-op
        assert service.state == "stopped"
        with pytest.raises((ReproError, OSError)):
            ServiceClient(server.host, server.port).request(
                {"micro": "q1", "args": {"sel": 30}}
            )

    def test_port_zero_picks_a_free_port(self, micro_db):
        engine = Engine(db=micro_db, workers=1)
        service = QueryService(engine, concurrency=1, own_engine=True)
        server = TcpQueryServer(service, port=0)
        try:
            assert server.port > 0
        finally:
            server.stop(timeout=10.0)

    def test_bind_conflict_raises_repro_error(self, micro_db):
        engine = Engine(db=micro_db, workers=1)
        service = QueryService(engine, concurrency=1)
        server = TcpQueryServer(service, port=0)
        try:
            with pytest.raises(ReproError, match=r"cannot bind"):
                TcpQueryServer(service, port=server.port)
        finally:
            server.stop(timeout=10.0)
            engine.shutdown()
