"""Throughput bench: report shape, cache integration, pool-vs-spawn."""

import json

from repro.bench.throughput import (
    percentile,
    pool_vs_spawn,
    run_throughput,
    run_workload,
)
from repro.datagen import microbench as mb
from repro.datagen.cache import DatasetCache
from repro.engine import Engine
from repro.engine.machine import PAPER_MACHINE

TINY = dict(
    rows=4_000,
    sf=0.001,
    workers=2,
    iterations=2,
    warmup=1,
    strategies=("swole",),
    baseline_sf=0.0015,  # distinct from sf: three distinct datasets
    baseline_iterations=4,
    verbose=False,
)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 1.0) == 5.0

    def test_single_sample(self):
        assert percentile([7.0], 0.95) == 7.0


class TestRunWorkload:
    def test_counts_and_cache_rates(self, micro_db):
        with Engine(db=micro_db, workers=2) as engine:
            mix = [("q1", mb.q1(30)), ("q2", mb.q2(30))]
            result = run_workload(
                engine, mix, "swole",
                workers=2, iterations=3, warmup=1, workload="smoke",
            )
        assert result.queries == 3 * len(mix)
        assert len(result.latencies) == result.queries
        assert result.qps > 0
        assert result.p50_ms <= result.p95_ms
        # warmup filled the plan cache: the measured loop only hits
        assert result.plan_cache["hit_rate"] == 1.0
        assert result.pooled
        row = result.format_row()
        assert "smoke" in row and "q/s" in row


class TestPoolVsSpawn:
    def test_reports_both_modes(self, tpch_db, tpch_config):
        machine = PAPER_MACHINE.scaled(tpch_config.machine_scale)
        result = pool_vs_spawn(
            tpch_db, machine, workers=2, iterations=4, rounds=2
        )
        assert result["pool_qps"] > 0 and result["spawn_qps"] > 0
        assert result["speedup"] > 0
        assert result["queries_per_mode"] == 4


class TestRunThroughput:
    def test_tiny_run_writes_report(self, tmp_path):
        out = tmp_path / "report.json"
        cache = DatasetCache(cache_dir=tmp_path / "cache")
        report = run_throughput(
            out_path=str(out), cache=cache, **TINY
        )
        assert out.is_file()
        on_disk = json.loads(out.read_text())
        assert on_disk["bench"] == "throughput"
        assert on_disk["config"]["workers"] == TINY["workers"]
        assert {w["workload"] for w in on_disk["workloads"]} == {
            "tpch-q1q6", "micro-q1q2",
        }
        for workload in on_disk["workloads"]:
            assert workload["qps"] > 0
            assert workload["p50_ms"] <= workload["p95_ms"]
        assert on_disk["pool_vs_spawn"]["pool_qps"] > 0
        # first run on an empty cache dir generates everything
        assert set(report["dataset_cache"]["sources"].values()) == {
            "generated"
        }

    def test_second_invocation_hits_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_throughput(
            out_path=None, cache=DatasetCache(cache_dir=cache_dir), **TINY
        )
        # fresh cache object over the same dir = a new process
        report = run_throughput(
            out_path=None, cache=DatasetCache(cache_dir=cache_dir), **TINY
        )
        sources = report["dataset_cache"]["sources"]
        assert set(sources.values()) == {"disk"}
        assert report["dataset_cache"]["stats"]["disk_hits"] >= 2
