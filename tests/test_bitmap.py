"""Tests for positional bitmaps (repro.storage.bitmap)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.bitmap import (
    BlockCompressedBitmap,
    PositionalBitmap,
    bitmap_from_mask,
    maybe_compress,
)


class TestPositionalBitmap:
    def test_starts_empty(self):
        bitmap = PositionalBitmap(100)
        assert bitmap.count() == 0
        assert not bitmap.test(np.arange(100)).any()

    def test_set_from_mask_roundtrip(self):
        mask = np.zeros(77, dtype=bool)
        mask[[0, 5, 63, 64, 76]] = True
        bitmap = bitmap_from_mask(mask)
        assert bitmap.to_mask().tolist() == mask.tolist()
        assert bitmap.count() == 5

    def test_set_offsets(self):
        bitmap = PositionalBitmap(20)
        bitmap.set_offsets(np.asarray([1, 1, 19]))
        assert bitmap.test(np.asarray([0, 1, 19])).tolist() == [
            False,
            True,
            True,
        ]

    def test_mask_rewrite_clears_old_bits(self):
        bitmap = PositionalBitmap(10)
        bitmap.set_offsets(np.asarray([0]))
        bitmap.set_from_mask(np.zeros(10, dtype=bool))
        assert bitmap.count() == 0

    def test_wrong_mask_length_rejected(self):
        with pytest.raises(StorageError):
            PositionalBitmap(10).set_from_mask(np.zeros(9, dtype=bool))

    def test_out_of_range_offsets_rejected(self):
        bitmap = PositionalBitmap(10)
        with pytest.raises(StorageError):
            bitmap.set_offsets(np.asarray([10]))
        with pytest.raises(StorageError):
            bitmap.test(np.asarray([-1]))

    def test_nbytes_is_one_bit_per_row(self):
        # the paper's example: 100M rows ~ 12.5 MB
        assert PositionalBitmap(100_000_000).nbytes == 12_500_000

    def test_negative_size_rejected(self):
        with pytest.raises(StorageError):
            PositionalBitmap(-1)

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_mask_roundtrip_property(self, bits):
        mask = np.asarray(bits, dtype=bool)
        bitmap = bitmap_from_mask(mask)
        assert bitmap.to_mask().tolist() == bits
        probe = np.arange(len(bits))
        assert bitmap.test(probe).tolist() == bits


class TestBlockCompressedBitmap:
    def test_equivalent_to_source(self, rng):
        mask = rng.random(10_000) < 0.3
        source = bitmap_from_mask(mask)
        compressed = BlockCompressedBitmap(source, block_bits=512)
        assert compressed.to_mask().tolist() == mask.tolist()
        probes = rng.integers(0, 10_000, 500)
        assert (
            compressed.test(probes).tolist() == source.test(probes).tolist()
        )

    def test_uniform_blocks_compress(self):
        mask = np.zeros(8192, dtype=bool)
        mask[:4096] = True  # two uniform blocks at block_bits=4096
        compressed = BlockCompressedBitmap(bitmap_from_mask(mask))
        assert compressed.mixed_fraction == 0.0
        assert compressed.nbytes < bitmap_from_mask(mask).nbytes

    def test_mixed_blocks_stored_verbatim(self, rng):
        mask = rng.random(8192) < 0.5
        compressed = BlockCompressedBitmap(bitmap_from_mask(mask), 512)
        assert compressed.mixed_fraction > 0.5

    def test_bad_block_bits_rejected(self):
        with pytest.raises(StorageError):
            BlockCompressedBitmap(PositionalBitmap(10), block_bits=12)

    def test_out_of_range_probe_rejected(self):
        compressed = BlockCompressedBitmap(PositionalBitmap(10))
        with pytest.raises(StorageError):
            compressed.test(np.asarray([11]))

    @given(st.lists(st.booleans(), min_size=1, max_size=600))
    @settings(max_examples=40, deadline=None)
    def test_compressed_equivalence_property(self, bits):
        mask = np.asarray(bits, dtype=bool)
        source = bitmap_from_mask(mask)
        compressed = BlockCompressedBitmap(source, block_bits=64)
        assert compressed.to_mask().tolist() == bits


class TestMaybeCompress:
    def test_compresses_sparse_bitmap(self):
        mask = np.zeros(100_000, dtype=bool)
        mask[:100] = True
        assert maybe_compress(bitmap_from_mask(mask)) is not None

    def test_declines_dense_random_bitmap(self, rng):
        mask = rng.random(100_000) < 0.5
        assert maybe_compress(bitmap_from_mask(mask), block_bits=512) is None
