"""Multi-process shard executor.

The contract under test: worker processes map the same on-disk columns
by dataset fingerprint, morsels ship over a pickle-free line-JSON
protocol, and the gathered answer is byte-identical to the serial one
(``repr`` equality — every float bit). Plus the operational envelope:
a SIGKILLed worker's morsel retries on a fresh process, engines refuse
databases without cache provenance, and small scans fall back to
in-process execution instead of paying the pipe.
"""

import json

import numpy as np
import pytest

from repro.datagen import microbench as mb
from repro.datagen import tpch as tpchgen
from repro.datagen.cache import load_dataset
from repro.engine import Engine
from repro.engine.costing import StatsOverride
from repro.engine.machine import PAPER_MACHINE
from repro.engine.shard import (
    decode_partial,
    encode_partial,
    override_from_wire,
    override_to_wire,
)
from repro.errors import ReproError
from repro.server import QueryRequest, QueryService
from repro.server.protocol import ProtocolError
from repro.tpch import logical_plan

SHARDS = 2


@pytest.fixture(scope="module")
def cached_tpch_db():
    """Tiny TPC-H loaded *through the cache* so it carries the
    fingerprint/cache-dir provenance shard workers need."""
    return load_dataset("tpch", tpchgen.TpchConfig(scale_factor=0.002))


@pytest.fixture(scope="module")
def serial_engine(cached_tpch_db):
    engine = Engine(
        cached_tpch_db,
        machine=PAPER_MACHINE,
        workers=1,
        min_parallel_rows=1,
    )
    yield engine
    engine.shutdown()


@pytest.fixture(scope="module")
def sharded_engine(cached_tpch_db):
    # min_parallel_rows=1 keeps the tiny test dataset above the fan-out
    # floor; the floor itself is tested separately (TestFallback).
    engine = Engine(
        cached_tpch_db,
        machine=PAPER_MACHINE,
        workers=SHARDS,
        shards=SHARDS,
        min_parallel_rows=1,
    )
    engine.start_shards()
    yield engine
    engine.shutdown()


class TestWireCodec:
    """The partial-state codec must be bit-exact through real JSON."""

    def roundtrip(self, value):
        return decode_partial(json.loads(json.dumps(encode_partial(value))))

    def test_arrays_roundtrip_bit_exact(self):
        value = {
            "sums": np.array([0.1 + 0.2, -0.0, 1e-300, np.inf]),
            "counts": np.arange(4, dtype=np.int64),
            "mask": np.array([True, False, True]),
            "keys": np.array(["AIR", "RAIL", "TRUCK"]),
            "grid": np.arange(6, dtype=np.float32).reshape(2, 3),
        }
        back = self.roundtrip(value)
        for name, item in value.items():
            assert back[name].dtype == item.dtype
            assert back[name].shape == item.shape
            assert back[name].tobytes() == item.tobytes()

    def test_scalars_roundtrip_bit_exact(self):
        value = {
            "np_float": np.float64(0.1),
            "np_int": np.int32(-7),
            "big_int": 2**80 + 1,
            "flt": 0.1 + 0.2,  # != 0.3; a decimal round-trip would drift
            "neg_zero": -0.0,
            "flag": True,
            "text": "lineitem",
            "nothing": None,
        }
        back = self.roundtrip(value)
        assert isinstance(back["np_float"], np.float64)
        assert back["np_float"].tobytes() == value["np_float"].tobytes()
        assert back["np_int"] == np.int32(-7)
        assert back["big_int"] == 2**80 + 1
        assert back["flt"].hex() == (0.1 + 0.2).hex()
        assert str(back["neg_zero"]) == "-0.0"
        assert back["flag"] is True
        assert back["text"] == "lineitem"
        assert back["nothing"] is None

    def test_nan_payload_survives(self):
        value = {"x": np.array([np.nan, 1.0])}
        back = self.roundtrip(value)
        assert back["x"].tobytes() == value["x"].tobytes()

    def test_override_wire_roundtrip(self):
        override = StatsOverride(selectivity=0.25, group_cardinality=7)
        wire = override_to_wire(override)
        assert wire == {"selectivity": 0.25, "group_cardinality": 7}
        assert override_from_wire(wire) == override
        assert override_to_wire(None) is None
        assert override_from_wire(None) is None


class TestByteIdentity:
    """Scatter/gather must be invisible in the answer."""

    @pytest.mark.parametrize("name", ["Q1", "Q6"])
    @pytest.mark.parametrize("strategy", ["swole", "datacentric"])
    def test_tpch_matches_serial_vectorized(
        self, serial_engine, sharded_engine, name, strategy
    ):
        plan = logical_plan(name)
        serial = serial_engine.execute(plan, strategy)
        sharded = sharded_engine.execute(plan, strategy)
        assert sharded.report.metrics.sharded
        assert sharded.report.metrics.workers == SHARDS
        assert repr(sharded.value) == repr(serial.value)

    @pytest.mark.parametrize("name", ["Q3", "Q14"])
    def test_join_queries_match_serial(
        self, serial_engine, sharded_engine, name
    ):
        # Join-heavy cells may legitimately decline to shard (no
        # parallel plan for the strategy) — the answer must match
        # either way.
        plan = logical_plan(name)
        serial = serial_engine.execute(plan, "swole")
        sharded = sharded_engine.execute(plan, "swole")
        assert repr(sharded.value) == repr(serial.value)

    def test_instrumented_backend_matches_serial(
        self, serial_engine, sharded_engine
    ):
        plan = logical_plan("Q1")
        serial = serial_engine.execute(plan, "swole", backend="instrumented")
        sharded = sharded_engine.execute(
            plan, "swole", backend="instrumented"
        )
        assert sharded.report.metrics.sharded
        assert repr(sharded.value) == repr(serial.value)
        assert sharded.report.total_cycles > 0

    @pytest.mark.parametrize("name", ["Q1", "Q6"])
    def test_encoded_scans_match_decoded_across_shards(
        self, cached_tpch_db, sharded_engine, name
    ):
        # The sharded engine serves encoded scans by default (the
        # encoding mode rides the task wire form, and workers mmap the
        # cache's persisted code streams); an encoding-off sharded
        # engine must produce the identical bytes.
        plan = logical_plan(name)
        encoded = sharded_engine.execute(plan, "swole")
        with Engine(
            cached_tpch_db,
            machine=PAPER_MACHINE,
            workers=SHARDS,
            shards=SHARDS,
            min_parallel_rows=1,
            encoding="off",
        ) as decoded_engine:
            decoded = decoded_engine.execute(plan, "swole")
        assert encoded.report.metrics.sharded
        assert decoded.report.metrics.sharded
        assert repr(encoded.value) == repr(decoded.value)

    def test_cached_database_carries_seeded_code_streams(
        self, cached_tpch_db
    ):
        # The dataset cache persists narrow code files; a cold load
        # (what every shard worker does) serves them as memory-mapped
        # arrays, value-identical to the wide columns.
        from pathlib import Path

        from repro.datagen.cache import DatasetCache

        cold = DatasetCache(
            cache_dir=Path(cached_tpch_db.dataset_cache_dir)
        ).load_fingerprint(cached_tpch_db.dataset_fingerprint)
        assert cold is not None
        col = cold.table("lineitem").column("l_shipdate")
        assert col.encoding.compressed
        codes = col.encoded_values()
        assert isinstance(codes, np.memmap)
        assert codes.dtype == np.dtype(col.encoding.dtype)
        assert np.array_equal(codes.astype(np.int64), col.values)

    def test_legacy_query_is_canonicalized_and_matches(self):
        # A legacy Query object goes through from_query() so parent and
        # workers compile the identical operator tree.
        db = load_dataset(
            "microbench",
            mb.MicrobenchConfig(num_rows=20_000, s_rows=200, c_cardinality=16),
        )
        with Engine(db, workers=1, min_parallel_rows=1) as serial:
            expected = serial.execute(mb.q1(30), "swole").value
        with Engine(
            db, workers=SHARDS, shards=SHARDS, min_parallel_rows=1
        ) as sharded:
            result = sharded.execute(mb.q1(30), "swole")
            assert result.report.metrics.sharded
            assert repr(result.value) == repr(expected)


class TestFallback:
    def test_small_scan_falls_back_to_in_process(self, cached_tpch_db):
        # Default fan-out floor: a 0.002-sf lineitem scan is far below
        # it, so the shard path declines and the morsel executor runs
        # in-process — same answer, no pipe.
        with Engine(cached_tpch_db, shards=SHARDS) as engine:
            result = engine.execute(logical_plan("Q6"), "swole")
            assert result is not None
            assert not result.report.metrics.sharded

    def test_request_shards_zero_forces_in_process(self, sharded_engine):
        result = sharded_engine.execute(logical_plan("Q6"), "swole", shards=0)
        assert not result.report.metrics.sharded

    def test_per_request_shards_on_plain_engine(self, cached_tpch_db):
        with Engine(cached_tpch_db, min_parallel_rows=1) as engine:
            result = engine.execute(
                logical_plan("Q6"), "swole", shards=SHARDS
            )
            assert result.report.metrics.sharded


class TestProvenance:
    def test_uncached_database_is_refused(self):
        db = mb.generate(
            mb.MicrobenchConfig(num_rows=1_000, s_rows=50, c_cardinality=8)
        )
        with pytest.raises(ReproError, match="dataset cache"):
            Engine(db, shards=SHARDS)

    def test_zero_shards_engine_is_refused(self, cached_tpch_db):
        with pytest.raises(ReproError, match="at least one shard"):
            Engine(cached_tpch_db, shards=0)


class TestCrashRecovery:
    def test_killed_worker_is_replaced_and_answer_unchanged(
        self, sharded_engine
    ):
        plan = logical_plan("Q6")
        expected = repr(sharded_engine.execute(plan, "swole").value)
        group = sharded_engine.start_shards()  # idempotent accessor
        assert group.kill_worker(0)
        result = sharded_engine.execute(plan, "swole")
        assert repr(result.value) == expected
        snapshot = group.snapshot()
        assert snapshot["crashes"] >= 1
        assert snapshot["restarts"] >= 1
        assert snapshot["alive"] == SHARDS


class TestLifecycle:
    def test_snapshot_shape_and_idempotent_stop(self, cached_tpch_db):
        engine = Engine(
            cached_tpch_db, shards=SHARDS, min_parallel_rows=1
        )
        group = engine.start_shards()
        engine.execute(logical_plan("Q6"), "swole")
        snapshot = group.snapshot()
        assert snapshot["shards"] == SHARDS
        assert snapshot["alive"] == SHARDS
        assert snapshot["tasks"] >= 1
        group.stop()
        group.stop()  # idempotent
        assert group.snapshot()["alive"] == 0
        engine.shutdown()
        engine.shutdown()  # idempotent


class TestService:
    def test_request_shards_served_and_identical(
        self, serial_engine, sharded_engine
    ):
        from repro.plan import plan_to_wire
        from repro.server.protocol import encode_value

        plan = logical_plan("Q6")
        expected = serial_engine.execute(plan, "swole").value
        with QueryService(sharded_engine, concurrency=2) as service:
            response = service.execute(
                QueryRequest(
                    query=plan_to_wire(plan),
                    strategy="swole",
                    shards=SHARDS,
                )
            )
        assert response.ok
        assert response.value == encode_value(expected)

    def test_request_wire_roundtrip_and_validation(self):
        request = QueryRequest(query="Q6", shards=4)
        assert QueryRequest.from_wire(request.to_wire()).shards == 4
        bad = QueryRequest(query="Q6").to_wire()
        bad["shards"] = -1
        with pytest.raises(ProtocolError, match="shards"):
            QueryRequest.from_wire(bad)
