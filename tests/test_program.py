"""Tests for compiled programs and result handling."""

import numpy as np
import pytest

from repro.codegen import compile_query
from repro.datagen import microbench as mb
from repro.engine import Session
from repro.engine.program import CompiledQuery, QueryResult, results_equal
from repro.engine.costing import CostReport
from repro.engine.machine import PAPER_MACHINE


class TestCompiledQuery:
    def test_run_uses_fresh_tracer(self, micro_db):
        compiled = compile_query(mb.q1(50), micro_db, "hybrid")
        session = Session()
        first = compiled.run(session)
        second = compiled.run(session)
        assert first.cycles == pytest.approx(second.cycles)

    def test_run_without_session(self, micro_db):
        compiled = compile_query(mb.q1(50), micro_db, "hybrid")
        result = compiled.run()
        assert result.cycles > 0

    def test_source_attached(self, micro_db):
        compiled = compile_query(mb.q1(50), micro_db, "datacentric")
        assert "for (i = 0" in compiled.source

    def test_seconds_consistent_with_cycles(self, micro_db):
        compiled = compile_query(mb.q1(50), micro_db, "hybrid")
        result = compiled.run(Session(machine=PAPER_MACHINE))
        assert result.seconds == pytest.approx(
            result.cycles / (PAPER_MACHINE.ghz * 1e9)
        )


class TestQueryResult:
    def test_scalar_accessor(self, micro_db):
        result = compile_query(mb.q1(50), micro_db, "hybrid").run()
        assert result.scalar("sum") == result.value["sum"]

    def test_groups_accessor(self, micro_db):
        result = compile_query(mb.q2(50), micro_db, "hybrid").run()
        groups = result.groups()
        assert len(groups) == len(result.value["keys"])
        first_key = int(result.value["keys"][0])
        assert groups[first_key][0] == int(result.value["aggs"][0][0])

    def test_groups_preserves_aggregate_dtype(self):
        # Regression: fractional aggregates used to be truncated to int.
        report = CostReport(machine=PAPER_MACHINE)
        value = {
            "keys": np.asarray([3, 7]),
            "aggs": np.asarray([[1.25, 4.0], [2.5, 8.0]]),
        }
        groups = QueryResult(value=value, report=report).groups()
        assert groups[3] == (1.25, 4.0)
        assert groups[7] == (2.5, 8.0)
        assert isinstance(groups[3][0], float)

    def test_groups_integer_aggs_stay_int(self):
        report = CostReport(machine=PAPER_MACHINE)
        value = {
            "keys": np.asarray([1]),
            "aggs": np.asarray([[10, 2]], dtype=np.int64),
        }
        groups = QueryResult(value=value, report=report).groups()
        assert groups[1] == (10, 2)
        assert isinstance(groups[1][0], int)


class TestResultsEqual:
    def _result(self, value):
        return QueryResult(value=value, report=CostReport(machine=PAPER_MACHINE))

    def test_scalar_equality(self):
        assert results_equal(self._result({"sum": 5}), self._result({"sum": 5}))
        assert not results_equal(
            self._result({"sum": 5}), self._result({"sum": 6})
        )

    def test_different_keys_unequal(self):
        assert not results_equal(
            self._result({"sum": 5}), self._result({"count": 5})
        )

    def test_array_equality(self):
        a = self._result({"keys": np.asarray([1, 2])})
        b = self._result({"keys": np.asarray([1, 2])})
        c = self._result({"keys": np.asarray([1, 3])})
        assert results_equal(a, b)
        assert not results_equal(a, c)
