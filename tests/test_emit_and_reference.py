"""Tests for the C emitters, the reference engine, and the ROF strategy."""

import numpy as np
import pytest

from repro.codegen import compile_query
from repro.codegen import emit
from repro.datagen import microbench as mb
from repro.engine import Session, reference
from repro.engine.events import RandomAccess
from repro.plan.expressions import Col, Const
from repro.plan.logical import AggSpec, Query


class TestEmitters:
    def test_datacentric_shape(self):
        source = emit.emit_datacentric(mb.q1(13))
        assert "if (r_x[i] < 13 && r_y[i] == 1)" in source
        assert "sum += (r_a[i] * r_b[i]);" in source

    def test_hybrid_has_three_inner_loops(self):
        source = emit.emit_hybrid(mb.q1(13))
        assert source.count("for (j = 0;") == 3  # prepass, selvec, agg
        assert "cmp[j]" in source and "idx[k]" in source

    def test_rof_has_prefetch_for_hash_queries(self):
        source = emit.emit_rof(mb.q2(13))
        assert "prefetch(" in source

    def test_rof_no_prefetch_without_hash_table(self):
        source = emit.emit_rof(mb.q1(13))
        assert "prefetch(" not in source

    def test_value_masking_multiplies_by_cmp(self):
        source = emit.emit_value_masking(mb.q1(13))
        assert "* cmp[j];" in source

    def test_access_merging_uses_tmp(self):
        source = emit.emit_value_masking(mb.q3(13, "r_x"), merged=["r_x"])
        assert "tmp[j]" in source and "merged access" in source

    def test_key_masking_masks_key_and_drops_throwaway(self):
        source = emit.emit_key_masking(mb.q2(13))
        assert "NULL_KEY" in source
        assert "ht_drop(ht, NULL_KEY)" in source

    def test_bitmap_semijoin_modes(self):
        query = mb.q4(10, 20)
        unconditional = emit.emit_bitmap_semijoin(query, True)
        selective = emit.emit_bitmap_semijoin(query, False)
        assert "unconditional write" in unconditional
        assert "if (" in selective

    def test_eager_aggregation_inverts_predicate(self):
        source = emit.emit_eager_aggregation(mb.q5(13))
        assert "!(" in source  # the inverted deletion predicate
        assert "ht_delete" in source

    def test_build_prefix_covers_join(self):
        source = emit.emit_datacentric(mb.q4(10, 20))
        assert "ht_insert(ht, s_pk[i]);" in source

    def test_interpreter_mentions_iterators(self):
        source = emit.emit_interpreter(mb.q5(13))
        assert "plan->next()" in source and "HashJoin" in source


class TestReferenceEngine:
    def test_scalar_no_predicate(self, micro_db):
        query = Query(
            table="R", aggregates=(AggSpec("sum", Col("r_a"), name="s"),)
        )
        out = reference.evaluate(query, micro_db)
        assert out["s"] == int(
            micro_db.table("R")["r_a"].astype(np.int64).sum()
        )

    def test_empty_selection(self, micro_db):
        query = Query(
            table="R",
            predicate=Col("r_x") < Const(0),
            aggregates=(
                AggSpec("sum", Col("r_a"), name="s"),
                AggSpec("count", name="n"),
            ),
        )
        out = reference.evaluate(query, micro_db)
        assert out == {"s": 0, "n": 0}

    def test_grouped_keys_sorted(self, micro_db):
        out = reference.evaluate(mb.q2(60), micro_db)
        assert (np.diff(out["keys"]) > 0).all()

    def test_semijoin_filters_by_valid_keys(self, micro_db):
        everything = reference.evaluate(mb.q4(100, 100), micro_db)
        filtered = reference.evaluate(mb.q4(100, 10), micro_db)
        assert filtered["sum"] <= everything["sum"]


class TestRofStrategy:
    def test_prefetch_marked_on_hash_accesses(self, micro_db):
        compiled = compile_query(mb.q2(50), micro_db, "rof")
        result = compiled.run(Session())
        ht_events = [
            e
            for _, e, _ in result.report.events
            if isinstance(e, RandomAccess) and e.kind.startswith("ht_")
        ]
        assert ht_events and all(e.prefetched for e in ht_events)

    def test_prefetch_flag_restored_after_run(self, micro_db):
        session = Session()
        compile_query(mb.q2(50), micro_db, "rof").run(session)
        assert session.ht_prefetch is False

    def test_rof_cheaper_than_hybrid_on_hash_heavy_query(self):
        config = mb.MicrobenchConfig(
            num_rows=100_000, s_rows=1_000, c_cardinality=30_000
        )
        db = mb.generate(config)
        from repro.bench.microbench import scaled_machine

        session = Session(machine=scaled_machine(config))
        hybrid = compile_query(mb.q2(80), db, "hybrid").run(session)
        rof = compile_query(mb.q2(80), db, "rof").run(session)
        assert rof.cycles < hybrid.cycles  # prefetching hides ht latency

    def test_rof_same_answers(self, micro_db):
        session = Session()
        for query in (mb.q1(40), mb.q4(40, 60), mb.q5(40)):
            a = compile_query(query, micro_db, "hybrid").run(session)
            b = compile_query(query, micro_db, "rof").run(session)
            from repro.engine.program import results_equal

            assert results_equal(a, b)


class TestBenchCli:
    def test_fig2_runs(self, capsys):
        from repro.bench.__main__ import run_figure

        run_figure("fig2", rows=1000, sf=0.002)
        out = capsys.readouterr().out
        assert "Value Masking" in out

    def test_unknown_figure_rejected(self):
        from repro.bench.__main__ import run_figure

        with pytest.raises(SystemExit):
            run_figure("fig99", rows=1000, sf=0.002)


class TestTpchReport:
    def test_report_table_and_row_lookup(self, tpch_db, tpch_config):
        from repro.bench.tpch import run_fig6

        report = run_fig6(tpch_config, queries=("Q1", "Q6"), db=tpch_db)
        text = report.format_table()
        assert "Q1" in text and "Q6" in text and "sw/hy" in text
        assert report.row("Q1").swole_speedup > 0
        with pytest.raises(KeyError):
            report.row("Q2")
