"""Cross-strategy answer equivalence: the repository's spine invariant.

Every code-generation strategy — interpreter, data-centric, hybrid, ROF,
SWOLE (with whatever techniques its planner picked) — must return exactly
the reference interpreter's answer on every query shape, across
selectivities and on adversarial hypothesis-generated data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.swole  # noqa: F401 - registers the swole strategy
from repro.codegen import available_strategies, compile_query
from repro.datagen import microbench as mb
from repro.engine import Session, reference
from repro.engine.program import results_equal
from repro.plan.expressions import And, Col, Const
from repro.plan.logical import AggSpec, JoinSpec, Query
from repro.storage.column import Column, LogicalType
from repro.storage.database import Database
from repro.storage.table import Table

STRATEGIES = ("interpreter", "datacentric", "hybrid", "rof", "swole")


def _assert_matches_reference(query, db):
    expected = reference.evaluate(query, db)
    session = Session()
    for strategy in STRATEGIES:
        compiled = compile_query(query, db, strategy)
        result = compiled.run(session)
        assert set(result.value) == set(expected), strategy
        for key in expected:
            lhs, rhs = expected[key], result.value[key]
            if isinstance(lhs, np.ndarray):
                assert np.array_equal(lhs, np.asarray(rhs)), (strategy, key)
            else:
                assert lhs == rhs, (strategy, key)


class TestRegistry:
    def test_all_strategies_registered(self):
        assert set(STRATEGIES) <= set(available_strategies())


@pytest.mark.parametrize("sel", [0, 5, 50, 95, 100])
@pytest.mark.parametrize("op", ["mul", "div"])
def test_q1_all_selectivities(micro_db, sel, op):
    _assert_matches_reference(mb.q1(sel, op), micro_db)


@pytest.mark.parametrize("sel", [0, 10, 60, 100])
def test_q2_group_by(micro_db, sel):
    _assert_matches_reference(mb.q2(sel), micro_db)


@pytest.mark.parametrize("col", ["r_b", "r_x"])
def test_q3_access_merging(micro_db, col):
    _assert_matches_reference(mb.q3(40, col), micro_db)


@pytest.mark.parametrize("sel1,sel2", [(0, 50), (10, 90), (90, 10), (100, 100)])
def test_q4_semijoin(micro_db, sel1, sel2):
    _assert_matches_reference(mb.q4(sel1, sel2), micro_db)


@pytest.mark.parametrize("sel", [0, 30, 100])
def test_q5_groupjoin(micro_db, sel):
    _assert_matches_reference(mb.q5(sel), micro_db)


def test_count_aggregate(micro_db):
    query = Query(
        table="R",
        predicate=Col("r_x") < Const(20),
        aggregates=(
            AggSpec("sum", Col("r_a"), name="total"),
            AggSpec("count", name="n"),
        ),
        name="count-query",
    )
    _assert_matches_reference(query, micro_db)


def test_grouped_count(micro_db):
    query = Query(
        table="R",
        predicate=Col("r_x") < Const(70),
        aggregates=(AggSpec("count", name="n"),),
        group_by="r_c",
        name="grouped-count",
    )
    _assert_matches_reference(query, micro_db)


def test_results_equal_helper(micro_db):
    query = mb.q1(30)
    session = Session()
    a = compile_query(query, micro_db, "hybrid").run(session)
    b = compile_query(query, micro_db, "swole").run(session)
    assert results_equal(a, b)


@st.composite
def tiny_database(draw):
    """A small random R/S pair with valid foreign keys."""
    n = draw(st.integers(min_value=1, max_value=120))
    s_n = draw(st.integers(min_value=1, max_value=16))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    r = Table(
        name="R",
        columns=(
            Column("r_a", LogicalType.INT8, rng.integers(1, 101, n)),
            Column("r_b", LogicalType.INT8, rng.integers(1, 101, n)),
            Column("r_x", LogicalType.INT8, rng.integers(0, 100, n)),
            Column("r_y", LogicalType.INT8, np.ones(n, dtype=np.int8)),
            Column("r_c", LogicalType.INT32, rng.integers(0, 8, n)),
            Column("r_fk", LogicalType.INT32, rng.integers(0, s_n, n)),
        ),
    )
    s = Table(
        name="S",
        columns=(
            Column("s_pk", LogicalType.INT32, np.arange(s_n, dtype=np.int32)),
            Column("s_x", LogicalType.INT8, rng.integers(0, 100, s_n)),
        ),
    )
    db = Database()
    db.add_table(r)
    db.add_table(s)
    db.add_foreign_key("R", "r_fk", "S", "s_pk")
    return db


@given(db=tiny_database(), sel=st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_scalar_aggregation_equivalence_property(db, sel):
    _assert_matches_reference(mb.q1(sel), db)


@given(db=tiny_database(), sel=st.integers(min_value=0, max_value=100))
@settings(max_examples=20, deadline=None)
def test_group_by_equivalence_property(db, sel):
    _assert_matches_reference(mb.q2(sel), db)


@given(
    db=tiny_database(),
    sel1=st.integers(min_value=0, max_value=100),
    sel2=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=20, deadline=None)
def test_semijoin_equivalence_property(db, sel1, sel2):
    _assert_matches_reference(mb.q4(sel1, sel2), db)


@given(db=tiny_database(), sel=st.integers(min_value=0, max_value=100))
@settings(max_examples=20, deadline=None)
def test_groupjoin_equivalence_property(db, sel):
    _assert_matches_reference(mb.q5(sel), db)
