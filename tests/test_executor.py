"""Morsel executor: parallel runs are bit-identical to serial runs.

The paper's simulated-cost methodology carries over to parallelism: each
morsel's kernels do real NumPy work and emit priced events, and the
executor's greedy schedule turns per-morsel cycles into a deterministic
simulated critical path. These tests pin the contract that matters most:
for every strategy and every query, ``workers=4`` produces the same bits
as ``workers=1``.
"""

import pytest

from repro.datagen import microbench as mb
from repro.engine import Engine, ExecutionKnobs, MorselExecutor
from repro.engine.executor import MIN_MORSEL_ROWS
from repro.engine.program import results_equal
from repro.tpch import query_names

STRATEGIES = ("datacentric", "hybrid", "rof", "swole")

MICRO_QUERIES = {
    "q1-mul": lambda: mb.q1(30, "mul"),
    "q1-div": lambda: mb.q1(30, "div"),
    "q2": lambda: mb.q2(30),
    "q3-rb": lambda: mb.q3(30, "r_b"),
    "q3-rx": lambda: mb.q3(30, "r_x"),
    "q4": lambda: mb.q4(50, 50),
    "q5": lambda: mb.q5(30),
    "q5-eager": lambda: mb.q5(75),
}


@pytest.fixture(scope="module")
def micro_engine(micro_db):
    return Engine(db=micro_db, workers=4)


@pytest.fixture(scope="module")
def forced_parallel_engine(micro_db):
    # Pinning the morsel size overrides the vectorized backend's
    # fan-out floor, so workers>1 genuinely runs the morsel path even
    # at this test-sized table.
    return Engine(
        db=micro_db, workers=4, knobs=ExecutionKnobs(morsel_rows=4096)
    )


@pytest.fixture(scope="module")
def tpch_engine(tpch_db):
    return Engine(db=tpch_db, workers=4)


class TestMicrobenchEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("query_name", sorted(MICRO_QUERIES))
    def test_parallel_matches_serial(
        self, micro_engine, strategy, query_name
    ):
        query = MICRO_QUERIES[query_name]()
        serial = micro_engine.execute(query, strategy, workers=1)
        parallel = micro_engine.execute(query, strategy, workers=4)
        assert results_equal(serial, parallel)

    @pytest.mark.parametrize("workers", (2, 3, 7))
    def test_any_worker_count(self, micro_engine, workers):
        query = mb.q2(40)
        serial = micro_engine.execute(query, "swole", workers=1)
        parallel = micro_engine.execute(query, "swole", workers=workers)
        assert results_equal(serial, parallel)

    def test_grouped_keys_ascending(self, micro_engine):
        result = micro_engine.execute(mb.q2(40), "swole", workers=4)
        keys = list(result.value["keys"])
        assert keys == sorted(keys)


class TestTpchEquivalence:
    # hand-coded TPC-H programs register the Figure 6 series (no rof)
    @pytest.mark.parametrize(
        "strategy", ("interpreter", "datacentric", "hybrid", "swole")
    )
    @pytest.mark.parametrize("name", query_names())
    def test_parallel_matches_serial(self, tpch_engine, strategy, name):
        serial = tpch_engine.execute(name, strategy, workers=1)
        parallel = tpch_engine.execute(name, strategy, workers=4)
        assert results_equal(serial, parallel)


class TestRunMetrics:
    # Simulated-cycle assertions run on the instrumented backend — the
    # costing authority; the vectorized serving backend reports zero
    # cycles by design (covered by test_backend_equivalence).
    def test_parallel_scan_metrics(self, micro_engine):
        result = micro_engine.execute(
            mb.q1(30), "swole", workers=4, backend="instrumented"
        )
        metrics = result.metrics
        assert metrics.workers == 4
        assert metrics.morsels > 1
        assert metrics.critical_path_cycles < metrics.total_cycles
        assert metrics.speedup > 1.0
        assert metrics.parallel_seconds < metrics.total_seconds
        assert "workers" in metrics.describe()

    def test_serial_metrics_degenerate(self, micro_engine):
        result = micro_engine.execute(mb.q1(30), "swole", workers=1)
        metrics = result.metrics
        assert metrics.workers == 1
        assert metrics.parallel_seconds == pytest.approx(result.seconds)
        assert metrics.speedup == pytest.approx(1.0)

    def test_setup_counted_in_critical_path(self, micro_engine):
        # semijoin: bitmap build runs serially once, before the fan-out
        result = micro_engine.execute(
            mb.q4(50, 50), "swole", workers=4, backend="instrumented"
        )
        metrics = result.metrics
        assert metrics.morsels > 1
        assert metrics.serial_cycles > 0
        assert metrics.critical_path_cycles > metrics.serial_cycles

    def test_eager_groupjoin_runs_parallel(self, forced_parallel_engine):
        engine = forced_parallel_engine
        compiled = engine.compile(mb.q5(75))
        assert "eager" in compiled.notes.get("plan", "")
        assert compiled.parallel is not None
        serial = engine.execute(mb.q5(75), workers=1)
        parallel = engine.execute(mb.q5(75), workers=4)
        assert results_equal(serial, parallel)
        assert parallel.metrics.morsels > 1

    def test_event_counts_recorded(self, micro_engine):
        result = micro_engine.execute(
            mb.q1(30), "swole", workers=4, backend="instrumented"
        )
        counts = result.metrics.event_counts
        assert counts and all(n > 0 for n in counts.values())

    def test_scan_rows_consistent_across_paths(self, forced_parallel_engine):
        # parallel: morsels cover the scan; serial: one morsel spanning
        # it, so morsel_rows == scan_rows in both metric conventions
        engine = forced_parallel_engine
        parallel = engine.execute(mb.q1(30), "swole", workers=4)
        serial = engine.execute(mb.q1(30), "swole", workers=1)
        p, s = parallel.metrics, serial.metrics
        assert p.scan_rows == s.scan_rows == 50_000
        assert s.morsel_rows == s.scan_rows
        assert p.morsel_rows * (p.morsels - 1) < p.scan_rows
        assert p.morsel_rows * p.morsels >= p.scan_rows
        assert p.pooled and not s.pooled

    def test_scan_rows_zero_without_parallel_plan(self, micro_engine):
        result = micro_engine.execute(mb.q1(30), "interpreter", workers=4)
        assert result.metrics.scan_rows == 0
        assert result.metrics.morsel_rows == 0


class TestExecutorEdges:
    def test_interpreter_never_parallel(self, micro_engine):
        result = micro_engine.execute(mb.q1(30), "interpreter", workers=4)
        assert result.metrics.morsels == 1

    def test_tiny_table_stays_serial(self, micro_db):
        # below MIN_MORSEL_ROWS the fan-out cannot pay for itself
        tiny = mb.generate(
            mb.MicrobenchConfig(num_rows=512, s_rows=64, c_cardinality=8)
        )
        assert 512 <= MIN_MORSEL_ROWS
        engine = Engine(db=tiny, workers=4)
        result = engine.execute(mb.q1(30), "swole", workers=4)
        assert result.metrics.morsels == 1

    def test_executor_rejects_bad_workers(self):
        with pytest.raises(Exception):
            MorselExecutor(workers=0)
