"""The staged lowering pipeline vs the hand-coded TPC-H oracles.

Q1/Q3/Q6/Q14 now compile from logical operator trees through the
strategy pass framework; the hand-coded ``tpch/qXX.py`` strategy
functions are demoted to equivalence oracles. The central invariant:
for every pipeline query and every strategy, the generic compiler
produces *byte-identical* results to both the oracle program and the
NumPy reference, at a simulated cost within noise of the oracle's.
"""

import numpy as np
import pytest

import repro
from repro.datagen import microbench as mb
from repro.engine import Engine, ExecutionKnobs, Session
from repro.engine.program import results_equal
from repro.plan.ops import from_query, plan_fingerprint
from repro.tpch import (
    PIPELINE_QUERIES,
    STRATEGIES,
    compile_tpch,
    logical_plan,
    oracle_tpch,
    reference_result,
)

#: The generic compiler must land within this cost band of the oracle —
#: wide enough for bookkeeping differences (selection-vector charging,
#: merged prepass masks), tight enough to catch a lost technique.
COST_BAND = (0.70, 1.30)


@pytest.mark.parametrize("name", PIPELINE_QUERIES)
@pytest.mark.parametrize("strategy", STRATEGIES)
class TestPipelineVsOracle:
    def test_results_byte_identical(self, tpch_db, name, strategy):
        pipe = compile_tpch(name, strategy, tpch_db).run(Session())
        oracle = oracle_tpch(name, strategy, tpch_db).run(Session())
        assert results_equal(pipe, oracle), (name, strategy)

    def test_results_match_reference(self, tpch_db, name, strategy):
        expected = reference_result(name, tpch_db)
        result = compile_tpch(name, strategy, tpch_db).run(Session())
        assert set(result.value) == set(expected)
        for key in expected:
            lhs, rhs = expected[key], result.value[key]
            if isinstance(lhs, np.ndarray):
                assert np.array_equal(lhs, np.asarray(rhs)), (
                    name,
                    strategy,
                    key,
                )
            else:
                assert lhs == rhs, (name, strategy, key)

    def test_cost_within_band_of_oracle(self, tpch_db, name, strategy):
        # The oracles always read decoded values, so the band compares
        # like with like: encoding off. The compressed access path's
        # cycle advantage is pinned separately below.
        pipe = compile_tpch(
            name, strategy, tpch_db, encoding="off"
        ).run(Session())
        oracle = oracle_tpch(name, strategy, tpch_db).run(Session())
        ratio = pipe.cycles / oracle.cycles
        assert COST_BAND[0] <= ratio <= COST_BAND[1], (
            name,
            strategy,
            ratio,
        )

    def test_encoded_no_costlier_than_decoded(self, tpch_db, name, strategy):
        # Streaming codes instead of 8-byte values must answer
        # byte-identically and stay within 1% of the decoded cycles:
        # on compute-bound kernels the overlap model already hides the
        # streams under arithmetic, so narrowing them saves nothing and
        # the late-materialization decode is the only marginal term.
        # Access-bound kernels (Q6 swole) win outright — pinned by the
        # compression bench.
        encoded = compile_tpch(name, strategy, tpch_db).run(Session())
        decoded = compile_tpch(
            name, strategy, tpch_db, encoding="off"
        ).run(Session())
        assert results_equal(encoded, decoded), (name, strategy)
        assert encoded.cycles <= decoded.cycles * 1.01, (
            name,
            strategy,
            encoded.cycles / decoded.cycles,
        )

    def test_access_bound_scan_wins_encoded(self, tpch_db, name, strategy):
        # The headline SWOLE result: on the scan-dominated Q6 the
        # compressed access path must beat the decoded one outright.
        if name != "Q6" or strategy != "swole":
            pytest.skip("access-bound headline cell only")
        encoded = compile_tpch(name, strategy, tpch_db).run(Session())
        decoded = compile_tpch(
            name, strategy, tpch_db, encoding="off"
        ).run(Session())
        assert encoded.cycles < decoded.cycles * 0.85, (
            encoded.cycles / decoded.cycles
        )


class TestGroupedOrdering:
    @pytest.mark.parametrize("name", ("Q1", "Q3"))
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_grouped_keys_ascending(self, tpch_db, name, strategy):
        result = compile_tpch(name, strategy, tpch_db).run(Session())
        keys = np.asarray(result.value["keys"])
        assert np.all(keys[:-1] < keys[1:]), (name, strategy)

    def test_q1_count_column_last(self, tpch_db):
        result = compile_tpch("Q1", "swole", tpch_db).run(Session())
        counts = result.value["aggs"][:, 5]
        shipdate = tpch_db.table("lineitem")["l_shipdate"]
        assert int(counts.sum()) == int((shipdate <= 10471).sum())


class TestCompileRouting:
    def test_pipeline_queries_carry_ir_notes(self, tpch_db):
        for name in PIPELINE_QUERIES:
            compiled = compile_tpch(name, "swole", tpch_db)
            assert compiled.notes["fingerprint"].startswith("ir:")
            assert "explain" in compiled.notes

    def test_no_hand_coded_program_on_execution_path(self, tpch_db):
        # Every TPC-H name compiles through the staged pipeline; the
        # hand-coded modules are reachable only via oracle_tpch.
        for name in ("Q4", "Q5", "Q13", "Q19"):
            compiled = compile_tpch(name, "swole", tpch_db)
            assert compiled.notes["fingerprint"].startswith("ir:")

    def test_oracle_stays_hand_coded(self, tpch_db):
        for name in ("Q1", "Q4", "Q13"):
            oracle = oracle_tpch(name, "swole", tpch_db)
            assert "fingerprint" not in oracle.notes

    def test_fingerprint_matches_plan(self, tpch_db):
        compiled = compile_tpch("Q6", "hybrid", tpch_db)
        assert compiled.notes["fingerprint"] == plan_fingerprint(
            logical_plan("Q6")
        )


class TestExplain:
    def test_explain_shows_all_three_stages(self, tpch_db):
        engine = Engine(db=tpch_db)
        text = engine.explain("Q3", "swole")
        assert "== Logical plan ==" in text
        assert "== Passes ==" in text
        assert "== Physical plan ==" in text
        engine.shutdown()

    def test_explain_shows_cost_estimates(self, tpch_db):
        engine = Engine(db=tpch_db)
        text = engine.explain("Q3", "swole")
        assert "est cycles" in text
        assert "bitmap" in text
        engine.shutdown()

    def test_explain_decisions_line(self, tpch_db):
        engine = Engine(db=tpch_db)
        text = engine.explain("Q1", "swole")
        assert "decisions:" in text
        # The §III-B pass weighs hybrid vs key masking vs value masking
        # and prints all three estimates before its pick.
        assert "key_masking=" in text
        assert "value_masking=" in text
        assert "aggregation=value_mask" in text
        engine.shutdown()

    @pytest.mark.parametrize("name", ("Q4", "Q5", "Q13", "Q19"))
    def test_explain_renders_three_stages_for_new_queries(
        self, tpch_db, name
    ):
        engine = Engine(db=tpch_db)
        text = engine.explain(name, "swole")
        assert "== Logical plan ==" in text
        assert "== Passes ==" in text
        assert "== Physical plan ==" in text
        assert not text.startswith("// hand-coded")
        engine.shutdown()

    def test_explain_accepts_logical_plans(self, tpch_db):
        engine = Engine(db=tpch_db)
        text = engine.explain(logical_plan("Q6"), "datacentric")
        assert "== Physical plan ==" in text
        assert "Filter[branch]" in text
        engine.shutdown()


class TestEngineIntegration:
    def test_pipeline_queries_cache_by_ir(self, tpch_db):
        engine = Engine(db=tpch_db)
        by_name = engine.compile("Q6", "swole")
        by_plan = engine.compile(logical_plan("Q6"), "swole")
        assert by_name is by_plan  # same fingerprint -> same cache slot
        engine.shutdown()

    def test_parallel_run_matches_serial(self, tpch_db):
        # morsel_rows pinned: below the vectorized fan-out floor the
        # default policy would (correctly) keep this scan serial.
        engine = Engine(
            db=tpch_db,
            workers=4,
            knobs=ExecutionKnobs(morsel_rows=2048),
        )
        for name in ("Q1", "Q6"):
            serial = engine.execute(name, "swole", workers=1)
            parallel = engine.execute(name, "swole", workers=4)
            assert parallel.metrics.workers == 4
            assert results_equal(serial, parallel), name
        engine.shutdown()


class TestMicroQueriesThroughPipeline:
    """from_query lifts legacy microbench queries onto the operator
    tree; the pipeline must agree with the strategy codegen there too."""

    @pytest.mark.parametrize(
        "query", [mb.q1(30), mb.q2(30), mb.q4(50, 50)], ids=["q1", "q2", "q4"]
    )
    @pytest.mark.parametrize("strategy", ("datacentric", "hybrid"))
    def test_matches_codegen(self, micro_db, query, strategy):
        from repro.codegen import compile_query
        from repro.codegen.pipeline import compile_pipeline

        pipe = compile_pipeline(from_query(query), micro_db, strategy)
        oracle = compile_query(query, micro_db, strategy)
        assert results_equal(pipe.run(Session()), oracle.run(Session()))

    @pytest.mark.parametrize(
        "query", [mb.q1(30), mb.q2(30), mb.q4(50, 50)], ids=["q1", "q2", "q4"]
    )
    def test_matches_swole_planner(self, micro_db, query):
        from repro.codegen.pipeline import compile_pipeline
        from repro.core.swole import compile_swole

        pipe = compile_pipeline(from_query(query), micro_db, "swole")
        oracle = compile_swole(query, micro_db)
        assert results_equal(pipe.run(Session()), oracle.run(Session()))


class TestStrategyRegistry:
    def test_available_strategies_typed(self):
        names = repro.available_strategies()
        assert isinstance(names, list)
        assert all(isinstance(n, str) for n in names)
        assert "swole" in names

    def test_register_strategy_rejects_silent_overwrite(self):
        from repro.codegen.base import register_strategy
        from repro.errors import CodegenError

        with pytest.raises(CodegenError, match="already registered"):

            @register_strategy("hybrid")
            def shadow(query, db):  # pragma: no cover - never called
                raise AssertionError

    def test_register_strategy_replace_warns(self):
        from repro.codegen.base import (
            _REGISTRY,
            get_strategy,
            register_strategy,
        )

        original = get_strategy("hybrid")
        try:
            with pytest.warns(RuntimeWarning, match="overwriting"):

                @register_strategy("hybrid", replace=True)
                def shadow(query, db):  # pragma: no cover - never called
                    raise AssertionError

            assert get_strategy("hybrid") is shadow
        finally:
            _REGISTRY["hybrid"] = original
