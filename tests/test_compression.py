"""Tests for the compression codecs (repro.storage.compression)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.column import (
    LogicalType,
    decimal_column,
    int_column,
    string_column,
)
from repro.storage.compression import (
    compress_int_column,
    dictionary_encode,
    fixed_point_decode,
    fixed_point_encode,
    narrowest_int_dtype,
    null_suppress,
    suppressed_logical_type,
)


class TestDictionaryEncoding:
    def test_roundtrip(self):
        values = ["red", "green", "blue", "red", "blue"]
        enc = dictionary_encode(values)
        assert enc.decode().tolist() == values

    def test_dictionary_is_sorted_unique(self):
        enc = dictionary_encode(["b", "a", "b"])
        assert enc.dictionary == ("a", "b")

    def test_codes_dtype(self):
        enc = dictionary_encode(["x"])
        assert enc.codes.dtype == np.int32

    def test_range_predicates_work_on_codes(self):
        values = ["apple", "cherry", "banana"]
        enc = dictionary_encode(values)
        cutoff = enc.dictionary.index("banana")
        decoded = np.asarray(values)
        assert (
            (enc.codes <= cutoff).tolist()
            == (decoded <= "banana").tolist()
        )

    @given(
        st.lists(
            st.text(
                alphabet=st.characters(blacklist_characters="\x00"),
                max_size=8,
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        enc = dictionary_encode(values)
        assert enc.decode().tolist() == [str(v) for v in values]

    def test_nul_characters_rejected(self):
        with pytest.raises(StorageError):
            dictionary_encode(["a\x00b"])


class TestNullSuppression:
    def test_small_values_become_int8(self):
        assert null_suppress(np.asarray([0, 100, -100])).dtype == np.int8

    def test_medium_values_become_int16(self):
        assert null_suppress(np.asarray([0, 1000])).dtype == np.int16

    def test_large_values_stay_int64(self):
        assert null_suppress(np.asarray([2**40])).dtype == np.int64

    def test_empty_array(self):
        assert null_suppress(np.asarray([], dtype=np.int64)).dtype == np.int8

    def test_rejects_floats(self):
        with pytest.raises(StorageError):
            null_suppress(np.asarray([1.5]))

    def test_suppressed_logical_type(self):
        assert (
            suppressed_logical_type(np.asarray([1, 2])) is LogicalType.INT8
        )
        assert (
            suppressed_logical_type(np.asarray([2**20]))
            is LogicalType.INT32
        )

    @given(
        st.lists(
            st.integers(min_value=-(2**62), max_value=2**62),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_lossless_property(self, values):
        array = np.asarray(values, dtype=np.int64)
        narrowed = null_suppress(array)
        assert narrowed.astype(np.int64).tolist() == values


class TestFixedPoint:
    def test_roundtrip(self):
        values = np.asarray([1.25, -3.5, 0.0])
        encoded = fixed_point_encode(values, 2)
        assert encoded.tolist() == [125, -350, 0]
        assert fixed_point_decode(encoded, 2).tolist() == values.tolist()

    def test_negative_scale_rejected(self):
        with pytest.raises(StorageError):
            fixed_point_encode(np.asarray([1.0]), -1)

    def test_overflow_detected(self):
        with pytest.raises(StorageError):
            fixed_point_encode(np.asarray([1e19]), 2)

    @given(
        st.lists(
            st.integers(min_value=-(10**12), max_value=10**12),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_integers_exact_property(self, values, scale):
        array = np.asarray(values, dtype=np.float64)
        encoded = fixed_point_encode(array, scale)
        decoded = fixed_point_decode(encoded, scale)
        assert decoded.tolist() == [float(v) for v in values]


class TestCompressIntColumn:
    def test_narrowest_type_chosen(self):
        col = compress_int_column("a", np.asarray([1, 2, 3]))
        assert col.logical_type is LogicalType.INT8

    def test_values_preserved(self):
        col = compress_int_column("a", np.asarray([300, -300]))
        assert col.logical_type is LogicalType.INT16
        assert col.values.tolist() == [300, -300]


class TestNarrowestIntDtype:
    def test_int8_boundaries_inclusive(self):
        assert narrowest_int_dtype(-128, 127) == np.int8
        assert narrowest_int_dtype(-129, 0) == np.int16
        assert narrowest_int_dtype(0, 128) == np.int16

    def test_int64_extremes(self):
        lo, hi = np.iinfo(np.int64).min, np.iinfo(np.int64).max
        assert narrowest_int_dtype(lo, hi) == np.int64


class TestColumnEncodingDescriptor:
    """The access path's metadata surface: codec / width / describe."""

    def test_string_column_reports_dict_codec(self):
        col = string_column("flag", ["A", "N", "R"] * 10)
        enc = col.encoding
        assert enc.codec == "dict"
        assert enc.width == 1
        assert enc.decoded_width == 4  # int32 dictionary codes stored
        assert enc.describe() == "dict:int8(4B->1B)"

    def test_decimal_column_reports_fxp_codec(self):
        col = decimal_column("price", [1.25, 900.5, 17.0], scale=2)
        enc = col.encoding
        assert enc.codec == "fxp"
        assert enc.decoded_width == 8
        assert enc.width < 8

    def test_wide_int_column_reports_ns_codec(self):
        col = int_column("qty", np.asarray([1, 50, 7], dtype=np.int64))
        assert col.encoding.codec == "ns"
        assert col.encoding.width == 1

    def test_already_narrow_column_reports_none(self):
        col = int_column(
            "qty",
            np.asarray([1, 2], dtype=np.int8),
            logical_type=LogicalType.INT8,
        )
        assert col.encoding.codec == "none"
        assert not col.encoding.compressed
        assert col.encoding.describe() == "none"

    def test_empty_column_reports_none(self):
        col = int_column("empty", np.asarray([], dtype=np.int64))
        assert col.encoding.codec == "none"

    def test_single_value_dictionary(self):
        # One distinct string: every code is 0, the narrowest stream
        # possible, and the round trip still reproduces the value.
        col = string_column("only", ["same"] * 8)
        assert col.encoding.codec == "dict"
        assert col.encoding.width == 1
        assert col.encoded_values().tolist() == [0] * 8
        assert col.decode().tolist() == ["same"] * 8

    def test_full_int64_range_cannot_narrow(self):
        info = np.iinfo(np.int64)
        col = int_column(
            "extremes", np.asarray([info.min, info.max], dtype=np.int64)
        )
        assert col.encoding.codec == "none"
        assert col.encoded_values() is col.values

    @given(
        st.lists(
            st.integers(
                min_value=np.iinfo(np.int64).min,
                max_value=np.iinfo(np.int64).max,
            ),
            min_size=0,
            max_size=64,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_encoded_stream_is_value_identical(self, values):
        col = int_column("v", np.asarray(values, dtype=np.int64))
        enc = col.encoding
        codes = col.encoded_values()
        assert codes.astype(np.int64).tolist() == values
        assert enc.width <= enc.decoded_width
        assert enc.compressed == (enc.width < enc.decoded_width)
        if enc.compressed:
            assert codes.dtype == np.dtype(enc.dtype)
            assert codes.itemsize == enc.width

    @given(
        st.lists(
            st.text(
                alphabet=st.characters(blacklist_characters="\x00"),
                max_size=6,
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_code_space_order_matches_value_order(self, values):
        # The translation rule behind code-space range predicates: the
        # dictionary is sorted, so code comparisons and string
        # comparisons agree pairwise.
        col = string_column("s", values)
        codes = col.encoded_values().astype(np.int64)
        decoded = col.decode()
        for i in range(len(values)):
            for j in range(len(values)):
                assert (codes[i] < codes[j]) == (
                    str(decoded[i]) < str(decoded[j])
                )


class TestSeedEncoded:
    def test_seeding_replaces_lazy_materialization(self):
        col = int_column("v", np.asarray([1, 2, 3], dtype=np.int64))
        enc = col.encoding
        codes = np.asarray([1, 2, 3], dtype=np.int8)
        col.seed_encoded(enc, codes)
        assert col.encoded_values() is codes

    def test_dtype_mismatch_rejected(self):
        col = int_column("v", np.asarray([1, 2, 3], dtype=np.int64))
        with pytest.raises(StorageError):
            col.seed_encoded(
                col.encoding, np.asarray([1, 2, 3], dtype=np.int16)
            )

    def test_length_mismatch_rejected(self):
        col = int_column("v", np.asarray([1, 2, 3], dtype=np.int64))
        with pytest.raises(StorageError):
            col.seed_encoded(
                col.encoding, np.asarray([1, 2], dtype=np.int8)
            )
