"""Tests for the compression codecs (repro.storage.compression)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.column import LogicalType
from repro.storage.compression import (
    compress_int_column,
    dictionary_encode,
    fixed_point_decode,
    fixed_point_encode,
    null_suppress,
    suppressed_logical_type,
)


class TestDictionaryEncoding:
    def test_roundtrip(self):
        values = ["red", "green", "blue", "red", "blue"]
        enc = dictionary_encode(values)
        assert enc.decode().tolist() == values

    def test_dictionary_is_sorted_unique(self):
        enc = dictionary_encode(["b", "a", "b"])
        assert enc.dictionary == ("a", "b")

    def test_codes_dtype(self):
        enc = dictionary_encode(["x"])
        assert enc.codes.dtype == np.int32

    def test_range_predicates_work_on_codes(self):
        values = ["apple", "cherry", "banana"]
        enc = dictionary_encode(values)
        cutoff = enc.dictionary.index("banana")
        decoded = np.asarray(values)
        assert (
            (enc.codes <= cutoff).tolist()
            == (decoded <= "banana").tolist()
        )

    @given(
        st.lists(
            st.text(
                alphabet=st.characters(blacklist_characters="\x00"),
                max_size=8,
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        enc = dictionary_encode(values)
        assert enc.decode().tolist() == [str(v) for v in values]

    def test_nul_characters_rejected(self):
        with pytest.raises(StorageError):
            dictionary_encode(["a\x00b"])


class TestNullSuppression:
    def test_small_values_become_int8(self):
        assert null_suppress(np.asarray([0, 100, -100])).dtype == np.int8

    def test_medium_values_become_int16(self):
        assert null_suppress(np.asarray([0, 1000])).dtype == np.int16

    def test_large_values_stay_int64(self):
        assert null_suppress(np.asarray([2**40])).dtype == np.int64

    def test_empty_array(self):
        assert null_suppress(np.asarray([], dtype=np.int64)).dtype == np.int8

    def test_rejects_floats(self):
        with pytest.raises(StorageError):
            null_suppress(np.asarray([1.5]))

    def test_suppressed_logical_type(self):
        assert (
            suppressed_logical_type(np.asarray([1, 2])) is LogicalType.INT8
        )
        assert (
            suppressed_logical_type(np.asarray([2**20]))
            is LogicalType.INT32
        )

    @given(
        st.lists(
            st.integers(min_value=-(2**62), max_value=2**62),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_lossless_property(self, values):
        array = np.asarray(values, dtype=np.int64)
        narrowed = null_suppress(array)
        assert narrowed.astype(np.int64).tolist() == values


class TestFixedPoint:
    def test_roundtrip(self):
        values = np.asarray([1.25, -3.5, 0.0])
        encoded = fixed_point_encode(values, 2)
        assert encoded.tolist() == [125, -350, 0]
        assert fixed_point_decode(encoded, 2).tolist() == values.tolist()

    def test_negative_scale_rejected(self):
        with pytest.raises(StorageError):
            fixed_point_encode(np.asarray([1.0]), -1)

    def test_overflow_detected(self):
        with pytest.raises(StorageError):
            fixed_point_encode(np.asarray([1e19]), 2)

    @given(
        st.lists(
            st.integers(min_value=-(10**12), max_value=10**12),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_integers_exact_property(self, values, scale):
        array = np.asarray(values, dtype=np.float64)
        encoded = fixed_point_encode(array, scale)
        decoded = fixed_point_decode(encoded, scale)
        assert decoded.tolist() == [float(v) for v in values]


class TestCompressIntColumn:
    def test_narrowest_type_chosen(self):
        col = compress_int_column("a", np.asarray([1, 2, 3]))
        assert col.logical_type is LogicalType.INT8

    def test_values_preserved(self):
        col = compress_int_column("a", np.asarray([300, -300]))
        assert col.logical_type is LogicalType.INT16
        assert col.values.tolist() == [300, -300]
