"""The Engine facade, session knobs, and deprecated entry points."""

import warnings

import pytest

import repro
from repro.datagen import microbench as mb
from repro.engine import Engine, ExecutionKnobs, Session
from repro.engine.machine import PAPER_MACHINE
from repro.engine.program import results_equal
from repro.errors import ReproError


@pytest.fixture()
def engine(micro_db):
    return Engine(db=micro_db, workers=4)


class TestEngineCompile:
    def test_auto_resolves_to_swole(self, engine):
        compiled = engine.compile(mb.q1(30))
        assert compiled.strategy == "swole"

    def test_explicit_strategy(self, engine):
        compiled = engine.compile(mb.q1(30), "datacentric")
        assert compiled.strategy == "datacentric"

    def test_warm_compile_skips_codegen(self, engine):
        engine.compile(mb.q1(30))
        misses_after_first = engine.cache_stats.misses
        again = engine.compile(mb.q1(30))
        assert engine.cache_stats.misses == misses_after_first
        assert engine.cache_stats.hits >= 1
        assert again is engine.compile(mb.q1(30))

    def test_tpch_by_name(self, tpch_db):
        engine = Engine(db=tpch_db)
        result = engine.execute("Q6", "hybrid")
        assert result.value

    def test_invalidate_forces_recompile(self, engine):
        first = engine.compile(mb.q2(30))
        engine.invalidate()
        second = engine.compile(mb.q2(30))
        assert first is not second
        assert engine.cache_stats.invalidations == 1


class TestEngineExecute:
    def test_execute_tags_cache_outcome(self, engine):
        cold = engine.execute(mb.q1(40))
        warm = engine.execute(mb.q1(40))
        assert cold.metrics.plan_cache == "miss"
        assert warm.metrics.plan_cache == "hit"
        assert results_equal(cold, warm)

    def test_worker_override_per_call(self, micro_db):
        # Pin the morsel size: the vectorized backend prefers serial
        # below its fan-out floor, and this test is about the worker
        # override reaching the executor, not that policy.
        engine = Engine(
            db=micro_db,
            workers=4,
            knobs=ExecutionKnobs(morsel_rows=4096),
        )
        with engine:
            serial = engine.execute(mb.q1(40), workers=1)
            assert serial.metrics.workers == 1
            default = engine.execute(mb.q1(40))
            assert default.metrics.workers == 4

    def test_strategies_agree_through_engine(self, engine):
        results = [
            engine.execute(mb.q1(30), strategy)
            for strategy in ("datacentric", "hybrid", "rof", "swole")
        ]
        for other in results[1:]:
            assert results_equal(results[0], other)

    def test_engine_rejects_zero_workers(self, micro_db):
        with pytest.raises(ReproError):
            Engine(db=micro_db, workers=0)


class TestSessionApi:
    def test_session_is_keyword_only(self):
        with pytest.raises(TypeError):
            Session(PAPER_MACHINE)  # positional machine no longer allowed

    def test_reset_returns_self(self):
        session = Session()
        assert session.reset() is session

    def test_knobs_dataclass_defaults(self):
        knobs = ExecutionKnobs()
        assert knobs.ht_prefetch is False
        assert knobs.morsel_rows is None

    def test_ht_prefetch_property_shim(self):
        session = Session(knobs=ExecutionKnobs(ht_prefetch=True))
        assert session.ht_prefetch is True
        session.ht_prefetch = False
        assert session.knobs.ht_prefetch is False

    def test_clone_isolates_knobs(self):
        session = Session(knobs=ExecutionKnobs(ht_prefetch=False))
        clone = session.clone()
        clone.knobs.ht_prefetch = True
        assert session.knobs.ht_prefetch is False

    def test_rof_prefetch_does_not_leak(self, engine):
        # ROF partials toggle ht_prefetch inside worker clones; the
        # engine-level default knobs must come out untouched.
        engine.execute(mb.q4(50, 50), "rof", workers=4)
        assert engine.knobs.ht_prefetch is False


class TestRemovedWrappers:
    def test_deprecated_wrappers_are_gone(self):
        # The pre-1.2 module-level compile_query / compile_swole shims
        # were removed; Engine.compile is the supported path.
        assert not hasattr(repro, "compile_query")
        assert not hasattr(repro, "compile_swole")
        assert "compile_query" not in repro.__all__
        assert "compile_swole" not in repro.__all__

    def test_engine_compile_replaces_wrappers(self, micro_db):
        engine = Engine(db=micro_db)
        hybrid = engine.compile(mb.q1(30), "hybrid")
        assert hybrid.run().value
        swole = engine.compile(mb.q1(30), "swole")
        assert swole.strategy == "swole"

    def test_engine_exported_from_top_level(self):
        assert repro.Engine is Engine
        for name in ("Engine", "RunMetrics", "PlanCache", "MorselExecutor"):
            assert name in repro.__all__

    def test_engine_path_emits_no_deprecation(self, micro_db):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Engine(db=micro_db).execute(mb.q1(30), "hybrid")
