"""Tests for the shared kernel library: correctness + emitted events."""

import numpy as np
import pytest

from repro.engine import kernels as K
from repro.engine.events import (
    Branch,
    CondRead,
    Compute,
    RandomAccess,
    SeqRead,
    SeqWrite,
)
from repro.engine.hashtable import NULL_KEY, HashTable
from repro.engine.session import Session
from repro.errors import ExecutionError
from repro.storage.bitmap import BlockCompressedBitmap, PositionalBitmap


@pytest.fixture()
def values(rng):
    return rng.integers(0, 100, 10_000).astype(np.int32)


def events_of(session, kind):
    return [e for _, e, _ in session.tracer.report.events if isinstance(e, kind)]


class TestPredicates:
    def test_compare_result_and_events(self, session, values):
        mask = K.compare(session, values, "<", 13, "x")
        assert np.array_equal(mask, values < 13)
        assert len(events_of(session, SeqRead)) == 1
        assert len(events_of(session, Compute)) == 1

    def test_compare_simd_flag(self, session, values):
        K.compare(session, values, "<", 13, "x", simd=False)
        (compute,) = events_of(session, Compute)
        assert compute.simd is False

    def test_compare_unknown_op(self, session, values):
        with pytest.raises(ExecutionError):
            K.compare(session, values, "~~", 13, "x")

    def test_compare_columns(self, session, rng):
        a = rng.integers(0, 50, 1000)
        b = rng.integers(0, 50, 1000)
        mask = K.compare_columns(session, a, b, "<", ("a", "b"))
        assert np.array_equal(mask, a < b)
        assert len(events_of(session, SeqRead)) == 2

    def test_isin(self, session, values):
        mask = K.isin(session, values, [1, 5, 9], "x")
        assert np.array_equal(mask, np.isin(values, [1, 5, 9]))

    def test_string_match_charges_per_tuple(self, session):
        mask = np.asarray([True, False, True])
        K.string_match(session, mask, "comment")
        (compute,) = [
            e for e in events_of(session, Compute) if e.op == "strcmp"
        ]
        assert compute.n == 3 and compute.simd is False

    def test_combine_and_or(self, session):
        a = np.asarray([True, True, False])
        b = np.asarray([True, False, False])
        assert K.combine_and(session, a, b).tolist() == [True, False, False]
        assert K.combine_or(session, a, b).tolist() == [True, True, False]

    def test_combine_requires_masks(self, session):
        with pytest.raises(ExecutionError):
            K.combine_and(session)

    def test_branch_measures_taken_fraction(self, session):
        mask = np.asarray([True] * 30 + [False] * 70)
        K.branch(session, mask, "site")
        (event,) = events_of(session, Branch)
        assert event.taken_fraction == pytest.approx(0.3)


class TestSelectionAndGather:
    def test_selection_vector_no_branch(self, session):
        mask = np.asarray([True, False, True, True])
        idx = K.selection_vector(session, mask)
        assert idx.tolist() == [0, 2, 3]
        assert not events_of(session, Branch)
        assert any(e.op == "select" for e in events_of(session, Compute))

    def test_selection_vector_branching(self, session):
        mask = np.asarray([True, False])
        K.selection_vector(session, mask, branching=True)
        assert events_of(session, Branch)

    def test_gather_values_and_events(self, session, values):
        idx = np.asarray([0, 10, 20])
        out = K.gather(session, values, idx, "x")
        assert np.array_equal(out, values[idx])
        (cond,) = events_of(session, CondRead)
        assert cond.n_selected == 3
        assert cond.n_range == values.shape[0]

    def test_conditional_read(self, session, values):
        mask = values < 5
        out = K.conditional_read(session, values, mask, "x")
        assert np.array_equal(out, values[mask])
        (cond,) = events_of(session, CondRead)
        assert cond.n_selected == int(mask.sum())


class TestArithmetic:
    def test_ops(self, session):
        a = np.asarray([10, 20, 30], dtype=np.int64)
        assert K.arith(session, "add", a, 1).tolist() == [11, 21, 31]
        assert K.arith(session, "sub", a, 1).tolist() == [9, 19, 29]
        assert K.arith(session, "mul", a, 2).tolist() == [20, 40, 60]
        assert K.arith(session, "div", a, 3).tolist() == [3, 6, 10]

    def test_division_by_zero_rejected(self, session):
        with pytest.raises(ExecutionError):
            K.arith(session, "div", np.asarray([1]), 0)

    def test_unknown_op_rejected(self, session):
        with pytest.raises(ExecutionError):
            K.arith(session, "pow", np.asarray([1]), 2)

    def test_reduce_sum(self, session):
        assert K.reduce_sum(session, np.asarray([1, 2, 3])) == 6

    def test_masked_sum_matches_filtered_sum(self, session, values):
        mask = values < 50
        expected = int(values[mask].astype(np.int64).sum())
        assert K.masked_sum(session, values.astype(np.int64), mask, "x") == expected

    def test_masked_sum_reads_sequentially_not_conditionally(
        self, session, values
    ):
        """The value-masking contract: no CondRead on the value column."""
        K.masked_sum(session, values.astype(np.int64), values < 50, "x")
        assert not events_of(session, CondRead)
        assert events_of(session, SeqRead)


class TestHashKernels:
    def test_ht_aggregate_and_lookup(self, session, rng):
        table = HashTable(expected_keys=50)
        keys = rng.integers(0, 50, 5000)
        K.ht_aggregate(session, table, keys, np.ones(5000, dtype=np.int64))
        slots, found = K.ht_lookup(session, table, np.arange(50))
        assert found.all()
        assert len(events_of(session, RandomAccess)) == 2

    def test_null_key_fraction_marked_hot(self, session):
        table = HashTable(expected_keys=10)
        keys = np.asarray([NULL_KEY] * 90 + list(range(10)), dtype=np.int64)
        K.ht_aggregate(session, table, keys, np.ones(100, dtype=np.int64))
        (event,) = events_of(session, RandomAccess)
        assert event.hot_fraction == pytest.approx(0.9)

    def test_ht_delete(self, session):
        table = HashTable(expected_keys=10)
        K.ht_insert_keys(session, table, np.arange(10))
        assert K.ht_delete(session, table, np.asarray([3, 4, 99])) == 2

    def test_prefetch_flag_propagates(self, session):
        session.ht_prefetch = True
        table = HashTable(expected_keys=10)
        K.ht_insert_keys(session, table, np.arange(10))
        (event,) = events_of(session, RandomAccess)
        assert event.prefetched is True


class TestBitmapKernels:
    def test_build_mask_and_probe(self, session):
        bitmap = PositionalBitmap(100)
        mask = np.zeros(100, dtype=bool)
        mask[[5, 50]] = True
        K.bitmap_build_mask(session, bitmap, mask, "bm")
        hits = K.bitmap_probe(session, bitmap, np.asarray([5, 6, 50]), "bm")
        assert hits.tolist() == [True, False, True]
        assert events_of(session, SeqWrite)
        assert events_of(session, RandomAccess)

    def test_build_offsets(self, session):
        bitmap = PositionalBitmap(10)
        K.bitmap_build_offsets(session, bitmap, np.asarray([1, 2]), "bm")
        assert bitmap.count() == 2

    def test_compressed_probe_costs_extra_ops(self, session):
        bitmap = PositionalBitmap(10_000)
        bitmap.set_offsets(np.asarray([1]))
        compressed = BlockCompressedBitmap(bitmap, block_bits=512)
        K.bitmap_probe(session, compressed, np.asarray([1, 2]), "bm")
        (event,) = events_of(session, RandomAccess)
        assert event.op_cycles > 0


class TestOverheadKernels:
    def test_scalar_loop(self, session):
        K.scalar_loop(session, 100)
        assert session.tracer.report.total_cycles == pytest.approx(
            100 * session.machine.scalar_loop_cycles
        )

    def test_interpreter_overhead_scales_with_operators(self, session):
        K.interpreter_overhead(session, 100, operators=3)
        assert session.tracer.report.total_cycles == pytest.approx(
            300 * session.machine.interpreter_tuple_cycles
        )
