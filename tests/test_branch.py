"""Tests for branch prediction (trace simulator vs analytic model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.branch import TwoBitPredictor, steady_state_mispredict_rate
from repro.errors import CostModelError


class TestTwoBitPredictor:
    def test_initial_state_validated(self):
        with pytest.raises(CostModelError):
            TwoBitPredictor(initial_state=4)

    def test_saturates_taken(self):
        p = TwoBitPredictor(0)
        for _ in range(10):
            p.record(True)
        assert p.state == 3
        assert p.predict() is True

    def test_saturates_not_taken(self):
        p = TwoBitPredictor(3)
        for _ in range(10):
            p.record(False)
        assert p.state == 0
        assert p.predict() is False

    def test_single_anomaly_does_not_flip_prediction(self):
        # the hysteresis property that motivates two bits
        p = TwoBitPredictor(3)
        p.record(False)
        assert p.predict() is True

    def test_all_taken_trace_has_at_most_two_mispredicts(self):
        p = TwoBitPredictor(0)
        assert p.run_trace(np.ones(100, dtype=bool)) <= 2

    def test_alternating_trace_is_pathological(self):
        p = TwoBitPredictor(1)
        outcomes = np.tile([True, False], 100)
        assert p.run_trace(outcomes) >= 90


class TestSteadyState:
    def test_extremes_are_perfect(self):
        assert steady_state_mispredict_rate(0.0) == 0.0
        assert steady_state_mispredict_rate(1.0) == 0.0

    def test_peak_at_half(self):
        assert steady_state_mispredict_rate(0.5) == pytest.approx(0.5)

    def test_symmetry(self):
        for p in (0.1, 0.25, 0.4):
            assert steady_state_mispredict_rate(
                p
            ) == pytest.approx(steady_state_mispredict_rate(1 - p))

    def test_monotone_toward_half(self):
        rates = [steady_state_mispredict_rate(p) for p in
                 (0.05, 0.15, 0.3, 0.5)]
        assert rates == sorted(rates)

    def test_out_of_range_rejected(self):
        with pytest.raises(CostModelError):
            steady_state_mispredict_rate(1.5)

    @given(st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=25, deadline=None)
    def test_analytic_matches_simulation(self, p_taken):
        """The Markov steady state tracks the trace simulator closely."""
        rng = np.random.default_rng(99)
        outcomes = rng.random(20_000) < p_taken
        simulated = TwoBitPredictor(1).run_trace(outcomes) / outcomes.shape[0]
        analytic = steady_state_mispredict_rate(p_taken)
        assert simulated == pytest.approx(analytic, abs=0.03)
