"""Tests for logical plans and statistics sampling (repro.plan.logical)."""

import numpy as np
import pytest

from repro.datagen import microbench as mb
from repro.errors import PlanError
from repro.plan.expressions import Col, Const
from repro.plan.logical import AggSpec, JoinSpec, Query, sample_stats


class TestAggSpec:
    def test_sum_requires_expression(self):
        with pytest.raises(PlanError):
            AggSpec("sum", None)

    def test_count_without_expression(self):
        assert AggSpec("count", name="n").func == "count"

    def test_unknown_function_rejected(self):
        with pytest.raises(PlanError):
            AggSpec("median", Col("a"))


class TestQuery:
    def test_requires_aggregates(self):
        with pytest.raises(PlanError):
            Query(table="R", aggregates=())

    def test_duplicate_output_names_rejected(self):
        with pytest.raises(PlanError):
            Query(
                table="R",
                aggregates=(
                    AggSpec("sum", Col("a"), name="s"),
                    AggSpec("count", name="s"),
                ),
            )

    def test_groupjoin_detection(self):
        query = mb.q5(50)
        assert query.is_groupjoin
        assert not query.is_semijoin

    def test_semijoin_detection(self):
        query = mb.q4(10, 20)
        assert query.is_semijoin
        assert not query.is_groupjoin

    def test_main_columns(self):
        query = mb.q1(13)
        assert set(query.main_columns()) == {"r_a", "r_b", "r_x", "r_y"}

    def test_reused_columns_detects_merging_opportunity(self):
        assert mb.q3(30, "r_x").reused_columns() == ("r_x",)
        assert mb.q1(30).reused_columns() == ()


class TestSampleStats:
    def test_selectivity_close_to_truth(self, micro_db):
        query = mb.q1(30)
        stats = sample_stats(query, micro_db.all_data())
        data = micro_db.data("R")
        truth = float(query.predicate.evaluate(data).mean())
        assert stats.selectivity == pytest.approx(truth, abs=0.03)

    def test_group_cardinality_estimate(self, micro_db, micro_config):
        stats = sample_stats(mb.q2(30), micro_db.all_data())
        assert stats.group_cardinality == pytest.approx(
            micro_config.c_cardinality, rel=0.2
        )

    def test_build_side_stats(self, micro_db, micro_config):
        stats = sample_stats(mb.q4(10, 40), micro_db.all_data())
        assert stats.build_rows == micro_config.s_rows
        assert stats.build_selectivity == pytest.approx(0.4, abs=0.05)

    def test_no_predicate_is_full_selectivity(self, micro_db):
        query = Query(
            table="R",
            aggregates=(AggSpec("sum", Col("r_a"), name="sum"),),
        )
        stats = sample_stats(query, micro_db.all_data())
        assert stats.selectivity == 1.0

    def test_agg_ops_collected(self, micro_db):
        stats = sample_stats(mb.q1(10, "div"), micro_db.all_data())
        assert "div" in stats.agg_ops

    def test_widths_reflect_storage(self, micro_db):
        stats = sample_stats(mb.q1(10), micro_db.all_data())
        assert stats.column_widths["r_a"] == 1  # int8
        assert stats.column_widths["r_c"] == 4  # int32
