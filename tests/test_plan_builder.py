"""PlanBuilder: fluent construction, validation, and API equivalences."""

import warnings

import pytest

from repro import Engine, PlanBuilder
from repro.datagen import microbench as mb
from repro.engine.plan_cache import query_fingerprint
from repro.engine.program import results_equal
from repro.errors import PlanError
from repro.plan.builder import scan
from repro.plan.expressions import And, Col
from repro.plan.logical import AggSpec
from repro.plan.ops import (
    ExistsJoin,
    Filter,
    GroupByAgg,
    Join,
    LogicalPlan,
    Scan,
    plan_fingerprint,
)
from repro.tpch import logical_plan


def _sum_ab():
    return AggSpec("sum", Col("r_a") * Col("r_b"), name="sum")


class TestConstruction:
    def test_matches_hand_built_tree(self):
        built = (
            PlanBuilder.scan("R")
            .filter(Col("r_x") < 13)
            .group_agg(_sum_ab())
            .build("q")
        )
        manual = LogicalPlan(
            name="q",
            root=GroupByAgg(
                child=Filter(Scan("R"), Col("r_x") < 13),
                aggregates=(_sum_ab(),),
            ),
        )
        assert built == manual
        assert plan_fingerprint(built) == plan_fingerprint(manual)

    def test_multiple_filter_args_become_conjuncts(self):
        built = (
            PlanBuilder.scan("R")
            .filter(Col("r_x") < 13, Col("r_y").eq(1))
            .group_agg(_sum_ab())
            .build("q")
        )
        predicate = built.root.child.predicate
        assert predicate == And([Col("r_x") < 13, Col("r_y").eq(1)])

    def test_string_build_side_becomes_scan(self):
        built = (
            PlanBuilder.scan("R")
            .join("S", fk_column="r_fk", pk_column="s_pk")
            .group_agg(_sum_ab())
            .build("q")
        )
        join = built.root.child
        assert isinstance(join, Join)
        assert join.build == Scan("S")
        assert join.is_semijoin

    def test_builder_build_side_passes_its_node(self):
        build_side = scan("S").filter(Col("s_x") < 50)
        built = (
            PlanBuilder.scan("R")
            .exists_join(build_side, pk_column="s_pk", fk_column="r_fk")
            .group_agg(_sum_ab())
            .build("q")
        )
        node = built.root.child
        assert isinstance(node, ExistsJoin)
        assert node.build == build_side.node
        assert not node.anti

    def test_anti_join_sugar(self):
        built = (
            PlanBuilder.scan("R")
            .anti_join("S", pk_column="s_pk", fk_column="r_fk")
            .group_agg(_sum_ab())
            .build("q")
        )
        assert built.root.child.anti

    def test_group_key_string_sugar(self):
        built = (
            PlanBuilder.scan("R").group_agg(_sum_ab(), key="r_c").build("q")
        )
        assert built.root.key == Col("r_c")
        assert built.root.key_name == "r_c"

    def test_group_key_col_names_itself(self):
        built = (
            PlanBuilder.scan("R")
            .group_agg(_sum_ab(), key=Col("r_c"))
            .build("q")
        )
        assert built.root.key_name == "r_c"

    def test_builders_are_immutable_prefixes_shareable(self):
        base = scan("R").filter(Col("r_x") < 13)
        one = base.group_agg(_sum_ab()).build("one")
        two = base.group_agg(_sum_ab(), key="r_c").build("two")
        assert one.root.key is None
        assert two.root.key == Col("r_c")
        assert one.root.child is two.root.child

    def test_describe_renders_partial_tree(self):
        text = scan("R").filter(Col("r_x") < 13).describe()
        assert "Scan R" in text
        assert "Filter" in text


class TestValidation:
    def test_build_requires_group_agg_root(self):
        with pytest.raises(PlanError, match="GroupByAgg"):
            scan("R").filter(Col("r_x") < 13).build("q")

    def test_filter_needs_predicates(self):
        with pytest.raises(PlanError, match="at least one"):
            scan("R").filter()

    def test_filter_rejects_non_expressions(self):
        with pytest.raises(PlanError, match="expressions"):
            scan("R").filter("r_x < 13")

    def test_bad_build_side_rejected(self):
        with pytest.raises(PlanError, match="build side"):
            scan("R").join(42, fk_column="r_fk", pk_column="s_pk")

    def test_bad_group_key_rejected(self):
        with pytest.raises(PlanError, match="group key"):
            scan("R").group_agg(_sum_ab(), key=42)

    def test_wraps_only_plan_nodes(self):
        with pytest.raises(PlanError, match="plan nodes"):
            PlanBuilder("R")


class TestEngineIntegration:
    def test_builder_plan_shares_cache_slot_with_legacy_query(self):
        # The builder spelling of uQ1 is structurally identical to the
        # legacy Query lifted through from_query, so both key the plan
        # cache by the same IR fingerprint.
        query = mb.q1(30)
        built = (
            PlanBuilder.scan("R")
            .filter(query.predicate)
            .group_agg(*query.aggregates)
            .build(query.name)
        )
        assert plan_fingerprint(built) == query_fingerprint(query)

    def test_builder_plan_executes_identically(self, micro_db):
        built = (
            PlanBuilder.scan("R")
            .filter(Col("r_x") < 30)
            .join(
                scan("S").filter(Col("s_x") < 50),
                fk_column="r_fk",
                pk_column="s_pk",
            )
            .group_agg(_sum_ab())
            .build("uQ4-by-builder")
        )
        with Engine(db=micro_db) as engine:
            swole = engine.execute(built, "swole")
            hybrid = engine.execute(built, "hybrid")
            assert results_equal(swole, hybrid)
            assert swole.scalar("sum") == engine.execute(
                mb.q4(30, 50), "swole"
            ).scalar("sum")


class TestNameDeprecation:
    def test_name_string_path_warns_with_replacement(self, tpch_db):
        with Engine(db=tpch_db) as engine:
            with pytest.warns(DeprecationWarning, match="PlanBuilder"):
                engine.compile("Q6", "hybrid")

    def test_plan_path_stays_silent(self, tpch_db):
        with Engine(db=tpch_db) as engine:
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                engine.compile(logical_plan("Q6"), "hybrid")
