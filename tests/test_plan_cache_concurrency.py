"""Regression tests: compilation must not happen under the cache lock.

The bug: ``get_or_compile`` used to run ``compile_fn`` while holding the
cache's global lock, so one slow compilation (key A) blocked every other
thread's cache access — including hits and misses on unrelated keys.
The fix is a per-key singleflight guard: the first thread to miss leads
the compile outside the lock; concurrent requests for the *same* key
wait and share the result (one compilation), while requests for *other*
keys proceed untouched.
"""

import threading

import pytest

from repro.engine.plan_cache import PlanCache

#: Generous bound for "did not deadlock / serialise"; each waiting
#: thread gets this long before the test declares it blocked.
WAIT = 5.0


class TestCrossKeyIndependence:
    def test_slow_compile_does_not_block_other_keys(self):
        cache = PlanCache()
        release_a = threading.Event()
        a_compiling = threading.Event()
        b_done = threading.Event()

        def compile_a():
            a_compiling.set()
            assert release_a.wait(WAIT), "slow compile never released"
            return "program-a"

        leader = threading.Thread(
            target=lambda: cache.get_or_compile("key-a", compile_a),
            daemon=True,
        )
        leader.start()
        assert a_compiling.wait(WAIT)

        # While key A is mid-compile, key B must miss, compile, and
        # return without waiting for A.
        def run_b():
            compiled, was_hit = cache.get_or_compile(
                "key-b", lambda: "program-b"
            )
            assert compiled == "program-b"
            assert not was_hit
            b_done.set()

        follower = threading.Thread(target=run_b, daemon=True)
        follower.start()
        assert b_done.wait(WAIT), (
            "a miss on key-b blocked behind key-a's compilation — "
            "compile_fn is running under the global cache lock again"
        )
        # And a *hit* on key B must also go through immediately.
        hit_done = threading.Event()

        def run_b_hit():
            compiled, was_hit = cache.get_or_compile(
                "key-b", lambda: pytest.fail("should not recompile")
            )
            assert compiled == "program-b" and was_hit
            hit_done.set()

        threading.Thread(target=run_b_hit, daemon=True).start()
        assert hit_done.wait(WAIT)

        release_a.set()
        leader.join(WAIT)
        follower.join(WAIT)
        assert cache.get_or_compile("key-a", lambda: "x") == (
            "program-a", True,
        )

    def test_stats_count_both_keys_as_misses(self):
        cache = PlanCache()
        cache.get_or_compile("a", lambda: "pa")
        cache.get_or_compile("b", lambda: "pb")
        cache.get_or_compile("a", lambda: "pa2")
        snap = cache.stats.snapshot()
        assert snap["misses"] == 2
        assert snap["hits"] == 1


class TestSameKeySingleflight:
    def test_concurrent_misses_compile_once(self):
        cache = PlanCache()
        compile_calls = []
        compile_started = threading.Event()
        release = threading.Event()

        def slow_compile():
            compile_calls.append(threading.current_thread().name)
            compile_started.set()
            assert release.wait(WAIT)
            return object()  # identity-checked below

        results = {}

        def request(name):
            results[name] = cache.get_or_compile("shared", slow_compile)

        t1 = threading.Thread(
            target=request, args=("t1",), name="t1", daemon=True
        )
        t1.start()
        assert compile_started.wait(WAIT)
        t2 = threading.Thread(
            target=request, args=("t2",), name="t2", daemon=True
        )
        t2.start()
        release.set()
        t1.join(WAIT)
        t2.join(WAIT)
        assert not t1.is_alive() and not t2.is_alive()

        assert compile_calls == ["t1"], "the plan compiled more than once"
        value1, hit1 = results["t1"]
        value2, hit2 = results["t2"]
        assert value1 is value2, "waiter got a different program object"
        assert not hit1, "the leader saw a miss"
        assert hit2, "the waiter is answered as a hit"
        snap = cache.stats.snapshot()
        assert snap["misses"] == 1
        assert snap["hits"] == 1

    def test_leader_failure_propagates_and_does_not_poison_the_key(self):
        cache = PlanCache()
        compile_started = threading.Event()
        release = threading.Event()

        class CompileBoom(RuntimeError):
            pass

        def failing_compile():
            compile_started.set()
            assert release.wait(WAIT)
            raise CompileBoom("codegen fell over")

        errors = []

        def request():
            try:
                cache.get_or_compile("doomed", failing_compile)
            except CompileBoom as exc:
                errors.append(exc)

        t1 = threading.Thread(target=request, daemon=True)
        t1.start()
        assert compile_started.wait(WAIT)
        t2 = threading.Thread(target=request, daemon=True)
        t2.start()
        release.set()
        t1.join(WAIT)
        t2.join(WAIT)

        # Both callers see the failure — the waiter re-raises the
        # leader's error instead of hanging on the guard forever (or,
        # if it arrived after the guard was cleared, its own retry's).
        assert len(errors) == 2, "the waiter did not see the leader's error"
        assert all(isinstance(e, CompileBoom) for e in errors)
        # The guard is gone: the next request simply retries the compile.
        compiled, was_hit = cache.get_or_compile(
            "doomed", lambda: "recovered"
        )
        assert compiled == "recovered"
        assert not was_hit
