"""Tests for the hand-coded TPC-H query programs.

The central invariant: for each of the paper's eight queries, every
strategy (interpreter, data-centric, hybrid, SWOLE) produces exactly the
reference answer. Per-query tests then assert strategy-specific access
contracts (Q4's bitmap replaces the hash table, Q1's key masking never
gathers, ...).
"""

import numpy as np
import pytest

from repro.engine import Session
from repro.engine.events import CondRead, RandomAccess
from repro.engine.machine import PAPER_MACHINE
from repro.errors import CodegenError
from repro.tpch import STRATEGIES, compile_tpch, query_names, reference_result

ALL_QUERIES = ("Q1", "Q3", "Q4", "Q5", "Q6", "Q13", "Q14", "Q19")


def _check(name, strategy, db):
    expected = reference_result(name, db)
    result = compile_tpch(name, strategy, db).run(Session())
    assert set(result.value) == set(expected)
    for key in expected:
        lhs, rhs = expected[key], result.value[key]
        if isinstance(lhs, np.ndarray):
            assert np.array_equal(lhs, np.asarray(rhs)), (name, strategy, key)
        else:
            assert lhs == rhs, (name, strategy, key)
    return result


class TestRegistry:
    def test_all_eight_queries_registered(self):
        assert tuple(query_names()) == ALL_QUERIES

    def test_unknown_query_rejected(self, tpch_db):
        with pytest.raises(CodegenError):
            compile_tpch("Q99", "hybrid", tpch_db)

    def test_unknown_strategy_rejected(self, tpch_db):
        with pytest.raises(CodegenError):
            compile_tpch("Q1", "volcano2000", tpch_db)


@pytest.mark.parametrize("name", ALL_QUERIES)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_answer_matches_reference(tpch_db, name, strategy):
    _check(name, strategy, tpch_db)


@pytest.mark.parametrize("name", ALL_QUERIES)
def test_source_emitted(tpch_db, name):
    for strategy in STRATEGIES:
        compiled = compile_tpch(name, strategy, tpch_db)
        assert name in compiled.source or "Q" in compiled.source
        assert len(compiled.source) > 40


@pytest.mark.parametrize("name", ALL_QUERIES)
def test_interpreter_is_slowest(tpch_db, name):
    """The sanity baseline must never beat compiled strategies."""
    session = Session(machine=PAPER_MACHINE.scaled(1000))
    costs = {
        s: compile_tpch(name, s, tpch_db).run(session).cycles
        for s in STRATEGIES
    }
    assert costs["interpreter"] == max(costs.values())


class TestQ1:
    def test_six_groups(self, tpch_db):
        result = _check("Q1", "swole", tpch_db)
        assert result.value["keys"].shape[0] == 6

    def test_swole_never_gathers(self, tpch_db):
        result = compile_tpch("Q1", "swole", tpch_db).run(Session())
        conds = [
            e for _, e, _ in result.report.events if isinstance(e, CondRead)
        ]
        assert not conds

    def test_counts_sum_to_selected_rows(self, tpch_db):
        result = _check("Q1", "hybrid", tpch_db)
        counts = result.value["aggs"][:, 5]
        shipdate = tpch_db.table("lineitem")["l_shipdate"]
        assert int(counts.sum()) == int((shipdate <= 10471).sum())


class TestQ4:
    def test_swole_semijoin_has_no_big_hash_table(self, tpch_db):
        """The semijoin structure is a bitmap; the only hash accesses
        left belong to the five-entry priority count table."""
        result = compile_tpch("Q4", "swole", tpch_db).run(Session())
        ht_events = [
            e
            for _, e, _ in result.report.events
            if isinstance(e, RandomAccess) and e.kind.startswith("ht_")
        ]
        assert all(e.struct_bytes < 10_000 for e in ht_events)
        hybrid = compile_tpch("Q4", "hybrid", tpch_db).run(Session())
        big = [
            e
            for _, e, _ in hybrid.report.events
            if isinstance(e, RandomAccess) and e.struct_bytes >= 10_000
        ]
        assert big, "hybrid's semijoin hash table should be large"

    def test_hash_and_bitmap_agree(self, tpch_db):
        session = Session()
        a = compile_tpch("Q4", "hybrid", tpch_db).run(session)
        b = compile_tpch("Q4", "swole", tpch_db).run(session)
        assert np.array_equal(a.value["keys"], b.value["keys"])
        assert np.array_equal(a.value["aggs"], b.value["aggs"])


class TestQ6:
    def test_revenue_positive(self, tpch_db):
        result = _check("Q6", "swole", tpch_db)
        assert result.value["revenue"] > 0

    def test_swole_reads_discount_once(self, tpch_db):
        from repro.engine.events import SeqRead

        result = compile_tpch("Q6", "swole", tpch_db).run(Session())
        reads = [
            e
            for _, e, _ in result.report.events
            if isinstance(e, SeqRead) and e.array == "l_discount"
        ]
        assert len(reads) == 1  # access merging


class TestQ13:
    def test_distribution_covers_all_customers(self, tpch_db):
        result = _check("Q13", "swole", tpch_db)
        total_customers = int(result.value["aggs"][:, 0].sum())
        assert total_customers == tpch_db.table("customer").num_rows

    def test_strcmp_dominates_all_strategies(self, tpch_db):
        """Paper: Q13's LIKE wall limits every strategy equally."""
        session = Session(machine=PAPER_MACHINE.scaled(1000))
        costs = [
            compile_tpch("Q13", s, tpch_db).run(session).cycles
            for s in ("datacentric", "hybrid", "swole")
        ]
        assert max(costs) / min(costs) < 1.3


class TestQ14:
    def test_promo_subset_of_total(self, tpch_db):
        result = _check("Q14", "hybrid", tpch_db)
        assert 0 < result.value["promo_revenue"] < result.value["total_revenue"]

    def test_swole_equals_hybrid(self, tpch_db):
        """Paper: SWOLE cannot improve Q14 and falls back to hybrid."""
        session = Session()
        hybrid = compile_tpch("Q14", "hybrid", tpch_db).run(session)
        swole = compile_tpch("Q14", "swole", tpch_db).run(session)
        assert swole.value == hybrid.value
        assert swole.cycles == pytest.approx(hybrid.cycles, rel=0.01)


class TestQ19:
    def test_revenue_matches_reference(self, tpch_db):
        # Q19's triple-guarded disjunction selects only a handful of
        # tuples ("only a handful of tuples comprise the final
        # aggregate"); at tiny scale factors that handful can be empty.
        result = _check("Q19", "swole", tpch_db)
        assert result.value["revenue"] >= 0

    def test_revenue_positive_at_larger_scale(self):
        from repro.datagen import tpch as tpchgen

        db = tpchgen.generate(tpchgen.TpchConfig(scale_factor=0.02))
        result = _check("Q19", "swole", db)
        assert result.value["revenue"] > 0


class TestPaperOrdering:
    """Fig. 6 shape: SWOLE never loses to hybrid by more than noise, and
    wins clearly on the bitmap queries."""

    @pytest.fixture(scope="class")
    def costs(self, tpch_db, tpch_config):
        session = Session(
            machine=PAPER_MACHINE.scaled(tpch_config.machine_scale)
        )
        out = {}
        for name in ALL_QUERIES:
            out[name] = {
                s: compile_tpch(name, s, tpch_db).run(session).cycles
                for s in ("datacentric", "hybrid", "swole")
            }
        return out

    @pytest.mark.parametrize("name", ALL_QUERIES)
    def test_swole_never_flips_the_winner(self, costs, name):
        assert costs[name]["swole"] <= costs[name]["hybrid"] * 1.10

    @pytest.mark.parametrize("name", ("Q4", "Q5"))
    def test_bitmap_queries_win_big(self, costs, name):
        assert costs[name]["hybrid"] / costs[name]["swole"] > 1.5

    def test_headline_speedup(self, costs):
        """The paper's headline: SWOLE outperforms hybrid by >2.6x on its
        best query."""
        best = max(
            costs[q]["hybrid"] / costs[q]["swole"] for q in ALL_QUERIES
        )
        assert best > 2.6
