"""The adaptive loop: feedback store, chooser, re-optimizer, engine wiring."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.adaptive import (
    ARM_CYCLE,
    AdaptiveController,
    AdaptivePolicy,
    FeedbackStore,
    Observation,
    StrategyChooser,
    observation_from_run,
    resolve_adaptive,
)
from repro.adaptive.reopt import ReOptimizer
from repro.bench.adaptive import clustered_microbench
from repro.datagen import microbench as mb
from repro.engine.costing import StatsOverride
from repro.engine.facade import Engine
from repro.engine.plan_cache import PlanCache, query_fingerprint
from repro.engine.program import results_equal
from repro.errors import ReproError
from repro.obs import MetricsRegistry
from repro.tpch.base import STRATEGIES, compile_tpch
from repro.tpch.plans import PIPELINE_QUERIES, logical_plan


BENCH_POLICY = AdaptivePolicy(
    alpha=0.5, explore_every=4, drift_threshold=0.3, min_observations=2
)


def _obs(wall=0.01, **kw):
    return Observation(wall_seconds=wall, **kw)


# -- feedback store -------------------------------------------------------


class TestFeedbackStore:
    def test_ewma_folding_is_deterministic(self):
        a = FeedbackStore(alpha=0.5)
        b = FeedbackStore(alpha=0.5)
        for store in (a, b):
            for wall in (0.01, 0.02, 0.04):
                store.record(
                    "fp", "swole", "vectorized", _obs(wall=wall)
                )
        assert (
            a.summary("fp").wall_seconds.value
            == b.summary("fp").wall_seconds.value
        )
        assert a.summary("fp").wall_seconds.value == pytest.approx(
            0.0275
        )

    def test_concurrent_recording_loses_nothing(self):
        store = FeedbackStore(alpha=0.2)
        threads, per_thread = 8, 200

        def hammer(idx):
            for i in range(per_thread):
                store.record(
                    f"fp{idx % 4}",
                    "swole",
                    "vectorized",
                    _obs(wall=0.001 * (i + 1), selectivity=0.5),
                )

        workers = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(threads)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        snap = store.snapshot()
        assert snap["recorded"] == threads * per_thread
        total = sum(
            s["observations"] for s in snap["summaries"].values()
        )
        assert total == threads * per_thread
        for s in snap["summaries"].values():
            assert s["selectivity"]["value"] == pytest.approx(0.5)

    def test_bounded_by_max_fingerprints(self):
        store = FeedbackStore(max_fingerprints=4)
        for i in range(16):
            store.record(f"fp{i}", "swole", "vectorized", _obs())
        snap = store.snapshot()
        assert snap["fingerprints"] == 4
        # LRU: the most recently recorded survive.
        assert set(snap["summaries"]) == {f"fp{i}" for i in range(12, 16)}

    def test_best_arm_tracks_wall_clock(self):
        store = FeedbackStore(alpha=0.5)
        for _ in range(3):
            store.record("fp", "swole", "vectorized", _obs(wall=0.001))
            store.record(
                "fp", "hybrid", "instrumented", _obs(wall=0.050)
            )
        assert store.best_arm("fp") == ("swole", "vectorized")

    def test_crossover_requires_both_modes(self):
        store = FeedbackStore(alpha=0.5)
        store.record(
            "fp", "swole", "vectorized",
            _obs(wall=0.010, scan_rows=1 << 16, parallel=False),
        )
        assert store.crossover_rows() is None
        store.record(
            "fp", "swole", "vectorized",
            _obs(wall=0.004, scan_rows=1 << 16, parallel=True),
        )
        assert store.crossover_rows() == 1 << 16
        # Serial winning in a smaller bucket does not mask the
        # measured crossover above it.
        store.record(
            "fp", "swole", "vectorized",
            _obs(wall=0.001, scan_rows=1 << 12, parallel=False),
        )
        store.record(
            "fp", "swole", "vectorized",
            _obs(wall=0.002, scan_rows=1 << 12, parallel=True),
        )
        assert store.crossover_rows() == 1 << 16

    def test_rejects_bad_policy(self):
        with pytest.raises(ReproError):
            FeedbackStore(alpha=0.0)
        with pytest.raises(ReproError):
            FeedbackStore(max_fingerprints=0)


class TestObservationExtraction:
    def test_hybrid_instrumented_measures_true_selectivity(
        self, micro_db
    ):
        engine = Engine(micro_db, backend="instrumented")
        result = engine.execute(mb.q1(30), "hybrid")
        obs = observation_from_run(
            result.report, result.report.metrics
        )
        data = micro_db.data("R")
        true_sel = float(np.mean(data["r_x"] < 30))
        assert obs.selectivity == pytest.approx(true_sel, abs=0.01)
        assert obs.total_cycles > 0
        assert obs.events > 0

    def test_datacentric_branch_product(self, micro_db):
        engine = Engine(micro_db, backend="instrumented")
        result = engine.execute(mb.q1(30), "datacentric")
        obs = observation_from_run(
            result.report, result.report.metrics
        )
        data = micro_db.data("R")
        true_sel = float(np.mean(data["r_x"] < 30))
        assert obs.selectivity is not None
        assert obs.selectivity == pytest.approx(true_sel, abs=0.02)

    def test_vectorized_run_has_no_selectivity(self, micro_db):
        engine = Engine(micro_db, backend="vectorized")
        result = engine.execute(mb.q1(30), "swole")
        obs = observation_from_run(
            result.report, result.report.metrics
        )
        assert obs.selectivity is None
        assert obs.wall_seconds > 0

    def test_join_run_measures_match_fraction(self, tpch_db):
        # Q3's semijoin probes emit zero-cost StatSample telemetry;
        # the observation folds them into one per-run match fraction
        # (the product over join sites of hits/probes).
        engine = Engine(tpch_db, backend="instrumented")
        result = engine.execute(logical_plan("Q3"), "hybrid")
        obs = observation_from_run(
            result.report, result.report.metrics
        )
        assert obs.match_fraction is not None
        assert 0.0 < obs.match_fraction < 1.0

    def test_group_cardinality_matches_result_groups(self, tpch_db):
        engine = Engine(tpch_db, backend="instrumented")
        result = engine.execute(logical_plan("Q1"), "hybrid")
        obs = observation_from_run(
            result.report, result.report.metrics
        )
        assert obs.group_cardinality == len(result.value["keys"])

    def test_scan_only_run_has_no_join_stats(self, micro_db):
        engine = Engine(micro_db, backend="instrumented")
        result = engine.execute(mb.q1(30), "hybrid")
        obs = observation_from_run(
            result.report, result.report.metrics
        )
        assert obs.match_fraction is None


# -- chooser --------------------------------------------------------------


class TestChooser:
    def test_schedule_is_deterministic(self):
        def run_schedule():
            store = FeedbackStore(alpha=0.5)
            chooser = StrategyChooser(store, explore_every=4)
            picks = []
            for i in range(24):
                strategy, backend, explored = chooser.choose(
                    "fp", "vectorized"
                )
                picks.append((strategy, backend, explored))
                store.record(
                    "fp", strategy, backend,
                    _obs(wall=0.01 if backend == "vectorized" else 0.05),
                )
            return picks

        assert run_schedule() == run_schedule()

    def test_explores_every_nth_cycling_arms(self):
        store = FeedbackStore(alpha=0.5)
        chooser = StrategyChooser(store, explore_every=4)
        picks = [chooser.choose("fp", "vectorized") for _ in range(13)]
        explored = [p for p in picks if p[2]]
        # Request 0 is the default arm; later explores walk ARM_CYCLE.
        assert explored[0] == ("swole", "vectorized", True)
        assert explored[1][:2] == ARM_CYCLE[0]
        assert explored[2][:2] == ARM_CYCLE[1]
        assert explored[3][:2] == ARM_CYCLE[2]
        assert len(explored) == 4

    def test_exploits_measured_best(self):
        store = FeedbackStore(alpha=0.5)
        chooser = StrategyChooser(store, explore_every=100)
        store.record(
            "fp", "datacentric", "vectorized", _obs(wall=0.001)
        )
        store.record("fp", "swole", "vectorized", _obs(wall=0.010))
        chooser.choose("fp", "vectorized")  # request 0 explores
        strategy, backend, explored = chooser.choose("fp", "vectorized")
        assert (strategy, backend, explored) == (
            "datacentric", "vectorized", False,
        )

    def test_instrumented_arms_lead_the_cycle(self):
        # Selectivity telemetry only flows from instrumented
        # conditional-access runs; the cycle must reach them first.
        assert ARM_CYCLE[0][1] == "instrumented"
        assert ARM_CYCLE[0][0] in ("hybrid", "datacentric")


# -- re-optimizer ---------------------------------------------------------


class TestReOptimizer:
    def _armed_store(self, observed=0.30, samples=3):
        store = FeedbackStore(alpha=0.5)
        for _ in range(samples):
            store.record(
                "fp", "hybrid", "instrumented",
                _obs(selectivity=observed),
            )
        return store

    def test_triggers_on_drift_and_installs_override(self):
        store = self._armed_store(observed=0.30)
        reopt = ReOptimizer(
            store, drift_threshold=0.3, min_observations=2
        )
        cache = PlanCache(capacity=8)
        cache.put(("fp", "swole", "m", 1024, "vectorized"), object())
        cache.put(("fp", "swole", "m", 1024, "instrumented"), object())
        cache.put(("other", "swole", "m", 1024, "vectorized"), object())
        triggered = reopt.maybe_reoptimize(
            "fp", {"survival": 0.95}, cache
        )
        assert triggered
        assert reopt.recompiles == 1
        override = reopt.override_for("fp")
        assert override is not None
        assert override.selectivity == pytest.approx(0.30)
        # Targeted: only fp's cells dropped, counter ticked per entry.
        assert len(cache) == 1
        assert cache.stats.invalidations == 2

    def test_quiet_below_threshold_or_samples(self):
        store = self._armed_store(observed=0.30, samples=1)
        reopt = ReOptimizer(
            store, drift_threshold=0.3, min_observations=2
        )
        cache = PlanCache(capacity=8)
        assert not reopt.maybe_reoptimize(
            "fp", {"survival": 0.95}, cache
        )
        store.record(
            "fp", "hybrid", "instrumented", _obs(selectivity=0.30)
        )
        assert not reopt.maybe_reoptimize(
            "fp", {"survival": 0.32}, cache
        )
        assert reopt.override_for("fp") is None

    def test_settled_override_does_not_thrash(self):
        store = self._armed_store(observed=0.30)
        reopt = ReOptimizer(
            store, drift_threshold=0.3, min_observations=2
        )
        cache = PlanCache(capacity=8)
        assert reopt.maybe_reoptimize("fp", {"survival": 0.95}, cache)
        # Same measured value against the installed override: drift is
        # now ~0, so no further invalidation however often we check.
        for _ in range(5):
            assert not reopt.maybe_reoptimize(
                "fp", {"survival": 0.95}, cache
            )
        assert reopt.recompiles == 1

    def test_override_carries_measured_join_statistics(self):
        store = FeedbackStore(alpha=0.5)
        for _ in range(3):
            store.record(
                "fp", "hybrid", "instrumented",
                _obs(
                    selectivity=0.30,
                    match_fraction=0.125,
                    group_cardinality=20.0,
                ),
            )
        reopt = ReOptimizer(
            store, drift_threshold=0.3, min_observations=2
        )
        cache = PlanCache(capacity=8)
        assert reopt.maybe_reoptimize("fp", {"survival": 0.95}, cache)
        override = reopt.override_for("fp")
        assert override.match_fraction == pytest.approx(0.125)
        assert override.group_cardinality == 20

    def test_override_join_fields_absent_without_telemetry(self):
        store = self._armed_store(observed=0.30)
        reopt = ReOptimizer(
            store, drift_threshold=0.3, min_observations=2
        )
        cache = PlanCache(capacity=8)
        assert reopt.maybe_reoptimize("fp", {"survival": 0.95}, cache)
        override = reopt.override_for("fp")
        assert override.match_fraction is None
        assert override.group_cardinality is None


# -- persistence ----------------------------------------------------------


class TestFeedbackPersistence:
    def _seasoned_store(self):
        store = FeedbackStore(alpha=0.5)
        for wall in (0.01, 0.02):
            store.record(
                "fp-a", "hybrid", "instrumented",
                _obs(
                    wall=wall,
                    selectivity=0.3,
                    match_fraction=0.1,
                    group_cardinality=12.0,
                    scan_rows=1 << 14,
                    parallel=False,
                ),
            )
        store.record(
            "fp-a", "swole", "vectorized",
            _obs(wall=0.005, scan_rows=1 << 14, parallel=True),
        )
        store.record("fp-b", "datacentric", "vectorized", _obs(wall=0.04))
        return store

    def test_snapshot_restore_roundtrip(self):
        store = self._seasoned_store()
        clone = FeedbackStore(alpha=0.5)
        assert clone.restore(store.snapshot()) == 2
        for fp in ("fp-a", "fp-b"):
            old, new = store.summary(fp), clone.summary(fp)
            assert new.observations == old.observations
            assert new.wall_seconds.value == old.wall_seconds.value
            assert new.wall_seconds.count == old.wall_seconds.count
            assert set(new.arms) == set(old.arms)
        assert (
            clone.observed_selectivity("fp-a")
            == store.observed_selectivity("fp-a")
        )
        assert (
            clone.observed_match_fraction("fp-a")
            == store.observed_match_fraction("fp-a")
        )
        assert (
            clone.observed_group_cardinality("fp-a")
            == store.observed_group_cardinality("fp-a")
        )
        assert clone.best_arm("fp-a") == store.best_arm("fp-a")
        assert clone.crossover_rows() == store.crossover_rows()

    def test_controller_save_load_roundtrip(self, tmp_path):
        controller = AdaptiveController(BENCH_POLICY)
        controller.store = self._seasoned_store()
        path = controller.save_feedback(tmp_path / "feedback.json")
        assert path.is_file()
        warm = AdaptiveController(BENCH_POLICY)
        assert warm.load_feedback(path) == 2
        assert warm.store.best_arm("fp-a") == ("swole", "vectorized")

    def test_load_tolerates_cold_start_conditions(self, tmp_path):
        controller = AdaptiveController()
        missing = tmp_path / "nope.json"
        assert controller.load_feedback(missing) == 0
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert controller.load_feedback(garbage) == 0
        import json as _json

        stale = tmp_path / "stale.json"
        stale.write_text(
            _json.dumps({"version": -1, "feedback": {}})
        )
        assert controller.load_feedback(stale) == 0

    def test_engine_warm_starts_from_saved_snapshot(
        self, micro_db, tmp_path, monkeypatch
    ):
        # A fresh adaptive engine loads the snapshot a prior engine
        # saved (both resolve the same path next to the dataset cache —
        # pinned here to this test's own temp dir so the warm state
        # cannot leak into other tests' fresh engines).
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with Engine(micro_db, adaptive=True) as first:
            for _ in range(3):
                first.execute(mb.q1(30), "auto")
            saved = first.save_feedback()
            assert saved is not None
            recorded = first.adaptive.store.snapshot()["recorded"]
        assert recorded > 0
        with Engine(micro_db, adaptive=True) as warm:
            assert (
                warm.adaptive.store.snapshot()["recorded"] >= recorded
            )

    def test_static_engine_saves_nothing(self, micro_db):
        with Engine(micro_db) as engine:
            assert engine.save_feedback() is None

    def test_shared_controller_skips_warm_start(self, micro_db):
        # Passing a ready controller means the caller owns its state;
        # the engine must not fold a stale snapshot into it.
        controller = AdaptiveController()
        with Engine(micro_db, adaptive=controller) as engine:
            assert engine.adaptive is controller
            assert controller.store.snapshot()["recorded"] == 0


# -- engine integration ---------------------------------------------------


def _clustered_db(rows=150_000):
    return clustered_microbench(
        mb.MicrobenchConfig(
            num_rows=rows, s_rows=500, c_cardinality=64, seed=7
        )
    )


class TestEngineIntegration:
    def test_resolve_adaptive_forms(self):
        assert resolve_adaptive(None) is None
        assert resolve_adaptive(False) is None
        assert isinstance(resolve_adaptive(True), AdaptiveController)
        controller = AdaptiveController()
        assert resolve_adaptive(controller) is controller
        with pytest.raises(TypeError):
            resolve_adaptive("yes")

    def test_static_engine_has_no_loop(self, micro_db):
        engine = Engine(micro_db, registry=MetricsRegistry())
        assert engine.adaptive is None
        engine.execute(mb.q1(30), "auto")
        assert "adaptive" not in engine.registry.snapshot()["sources"]

    def test_drift_recompiles_and_results_stay_identical(self):
        db = _clustered_db()
        engine = Engine(
            db, adaptive=BENCH_POLICY, registry=MetricsRegistry()
        )
        static = Engine(db)
        query = mb.q1(30)
        want = static.execute(query, "swole")
        for _ in range(16):
            got = engine.execute(query, "auto")
            assert results_equal(got, want)
        assert engine.adaptive.recompiles >= 1
        override = engine.adaptive.override_for(
            query_fingerprint(query)
        )
        assert override is not None
        data = db.data("R")
        true_sel = float(np.mean(data["r_x"] < 30))
        assert override.selectivity == pytest.approx(
            true_sel, abs=0.02
        )
        snap = engine.registry.snapshot()
        assert snap["sources"]["adaptive"]["reopt"]["recompiles"] >= 1
        counters = snap["counters"]
        assert any(
            name.startswith("adaptive_recompiles_total")
            for name in counters
        )
        assert any(
            name.startswith("adaptive_explorations_total")
            for name in counters
        )

    def test_recompile_on_drift_is_deterministic(self):
        # Same observation sequence -> same override, same re-planned
        # tree, byte-identical explain. Observations are synthetic so
        # wall-clock noise cannot enter the comparison.
        def converge():
            engine = Engine(_clustered_db(), adaptive=BENCH_POLICY)
            query = mb.q1(30)
            fingerprint = query_fingerprint(query)
            estimates = engine.compile(query, "swole").notes[
                "estimated_stats"
            ]
            for i in range(4):
                engine.adaptive.observe(
                    fingerprint,
                    "hybrid",
                    "instrumented",
                    _obs(wall=0.005, selectivity=0.2987 + 0.0001 * i),
                    estimated_stats=estimates,
                )
            override = engine.adaptive.override_for(fingerprint)
            explain = engine.explain(query, "swole")
            return override, explain

        first_override, first_explain = converge()
        second_override, second_explain = converge()
        assert first_override is not None
        assert first_override == second_override
        assert first_explain == second_explain
        assert "== Feedback ==" in first_explain

    def test_override_replans_with_measured_cardinality(self):
        db = _clustered_db()
        engine = Engine(db, adaptive=True)
        query = mb.q1(30)
        fingerprint = query_fingerprint(query)
        before = engine.explain(query, "swole")
        engine.adaptive.reopt.apply_override(
            fingerprint, StatsOverride(selectivity=0.3)
        )
        engine.plan_cache.invalidate(fingerprint)
        after = engine.explain(query, "swole")
        assert "stats_override" not in before
        assert before != after

    def test_explain_feedback_only_after_observations(self, micro_db):
        engine = Engine(micro_db, adaptive=True)
        static = Engine(micro_db)
        query = mb.q1(30)
        assert engine.explain(query, "swole") == static.explain(
            query, "swole"
        )
        engine.execute(query, "hybrid", backend="instrumented")
        feedback = engine.explain(query, "swole")
        assert "== Feedback ==" in feedback
        assert "observations: 1" in feedback
        assert "selectivity: estimated" in feedback


class TestTpchEquivalence:
    def test_results_identical_before_and_after_reoptimization(
        self, tpch_db
    ):
        adaptive = Engine(tpch_db, adaptive=True)
        static = Engine(tpch_db)
        for name in PIPELINE_QUERIES:
            plan = logical_plan(name)
            fingerprint = query_fingerprint(plan)
            # Install a deliberately wrong measured selectivity and
            # force the recompile path for every strategy x backend.
            adaptive.adaptive.reopt.apply_override(
                fingerprint, StatsOverride(selectivity=0.42)
            )
            adaptive.plan_cache.invalidate(fingerprint)
            for strategy in STRATEGIES:
                for backend in ("instrumented", "vectorized"):
                    got = adaptive.execute(
                        plan, strategy, backend=backend
                    )
                    want = static.execute(
                        plan, strategy, backend=backend
                    )
                    assert results_equal(got, want), (
                        name, strategy, backend,
                    )

    def test_override_threads_into_compile_tpch(self, tpch_db):
        plain = compile_tpch("Q6", "swole", tpch_db)
        overridden = compile_tpch(
            "Q6", "swole", tpch_db,
            overrides=StatsOverride(selectivity=0.9),
        )
        assert "stats_override" in overridden.notes
        assert "stats_override" not in plain.notes
        assert "estimated_stats" in plain.notes


# -- fan-out floor knob ---------------------------------------------------


class TestMinParallelRows:
    def test_engine_knob_overrides_program_floor(self, micro_db):
        # 50K rows is under the vectorized program's built-in 256K
        # floor, so by default the scan runs serial; lowering the knob
        # turns the same program parallel.
        default = Engine(micro_db, workers=4)
        floored = Engine(micro_db, workers=4, min_parallel_rows=4096)
        query = mb.q1(30)
        serial = default.execute(query, "swole")
        parallel = floored.execute(query, "swole")
        assert not serial.report.metrics.parallel
        assert parallel.report.metrics.parallel
        assert results_equal(serial, parallel)

    def test_measured_crossover_seeds_sessions(self, micro_db):
        engine = Engine(micro_db, workers=4, adaptive=True)
        assert engine.session().knobs.min_parallel_rows is None
        store = engine.adaptive.store
        store.record(
            "fp", "swole", "vectorized",
            _obs(wall=0.010, scan_rows=1 << 14, parallel=False),
        )
        store.record(
            "fp", "swole", "vectorized",
            _obs(wall=0.002, scan_rows=1 << 14, parallel=True),
        )
        assert engine.session().knobs.min_parallel_rows == 1 << 14
        # An explicit engine knob always wins over the measurement.
        pinned = Engine(
            micro_db, workers=4, adaptive=True,
            min_parallel_rows=1 << 20,
        )
        pinned.adaptive.store.record(
            "fp", "swole", "vectorized",
            _obs(wall=0.010, scan_rows=1 << 14, parallel=False),
        )
        pinned.adaptive.store.record(
            "fp", "swole", "vectorized",
            _obs(wall=0.002, scan_rows=1 << 14, parallel=True),
        )
        assert pinned.session().knobs.min_parallel_rows == 1 << 20


# -- plan cache satellite -------------------------------------------------


class TestTargetedInvalidation:
    def test_invalidate_by_fingerprint(self):
        cache = PlanCache(capacity=8)
        keys = [
            ("fpA", "swole", "m", 1024, "vectorized"),
            ("fpA", "hybrid", "m", 1024, "instrumented"),
            ("fpB", "swole", "m", 1024, "vectorized"),
        ]
        for key in keys:
            cache.put(key, object())
        assert cache.invalidate("fpA") == 2
        assert cache.keys() == [keys[2]]
        assert cache.stats.invalidations == 2
        assert cache.invalidate("missing") == 0

    def test_invalidate_where(self):
        cache = PlanCache(capacity=8)
        for backend in ("vectorized", "instrumented"):
            cache.put(("fp", "swole", "m", 1024, backend), object())
        dropped = cache.invalidate_where(
            lambda key: key[-1] == "instrumented"
        )
        assert dropped == 1
        assert cache.keys() == [("fp", "swole", "m", 1024, "vectorized")]

    def test_full_invalidate_still_counts_once(self):
        cache = PlanCache(capacity=8)
        for i in range(3):
            cache.put(("fp%d" % i, "s", "m", 1024, "b"), object())
        assert cache.invalidate() == 3
        assert cache.stats.invalidations == 1
