"""Structural plan serde: JSON round trips preserve fingerprints."""

import json

import pytest

from repro.errors import PlanError
from repro.plan.expressions import (
    And,
    Arith,
    Case,
    Col,
    Const,
    DictEq,
    DictIn,
    DictPrefix,
    InSet,
    Or,
    StrMatch,
)
from repro.plan.logical import AggSpec
from repro.plan.ops import LogicalPlan, plan_fingerprint
from repro.plan.serde import (
    expr_from_dict,
    expr_to_dict,
    plan_from_dict,
    plan_from_wire,
    plan_to_dict,
    plan_to_wire,
)
from repro.tpch import PIPELINE_QUERIES, logical_plan


class TestPlanRoundTrips:
    @pytest.mark.parametrize("name", PIPELINE_QUERIES)
    def test_tpch_plans_survive_json(self, name):
        plan = logical_plan(name)
        payload = json.loads(json.dumps(plan_to_dict(plan)))
        back = plan_from_dict(payload)
        assert back == plan
        assert plan_fingerprint(back) == plan_fingerprint(plan)

    def test_wire_envelope_carries_fingerprint(self):
        plan = logical_plan("Q6")
        wire = plan_to_wire(plan)
        assert wire["fingerprint"] == plan_fingerprint(plan)
        assert plan_from_wire(json.loads(json.dumps(wire))) == plan

    def test_envelope_without_fingerprint_still_decodes(self):
        plan = logical_plan("Q6")
        assert plan_from_wire({"plan": plan_to_dict(plan)}) == plan


class TestExpressionRoundTrips:
    @pytest.mark.parametrize(
        "expr",
        [
            Col("a"),
            Const(7),
            Col("a") < Const(3),
            And([Col("a") < 3, Col("b").eq(1)]),
            Or([Col("a") < 3, Col("b") > 9]),
            Arith("div", Col("a"), Const(2)),
            Case([(Col("a") < 3, Const(1))], Const(0)),
            InSet(Col("a"), (1, 2, 3)),
            DictEq("c", "PROMO"),
            DictPrefix("c", "PROMO"),
            DictIn("c", ("AIR", "REG AIR")),
            StrMatch("c", "%special%", "c_flag", negated=True),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_round_trip(self, expr):
        payload = json.loads(json.dumps(expr_to_dict(expr)))
        assert expr_from_dict(payload) == expr


class TestRejections:
    def test_unknown_node_type(self):
        with pytest.raises(PlanError, match="unknown plan node"):
            plan_from_dict({"name": "x", "root": {"t": "window"}})

    def test_unknown_expression_type(self):
        with pytest.raises(PlanError, match="unknown expression"):
            expr_from_dict({"t": "regex"})

    def test_missing_type_tag(self):
        with pytest.raises(PlanError, match="type tag"):
            expr_from_dict({"name": "a"})

    def test_missing_field_named(self):
        with pytest.raises(PlanError, match="missing field"):
            expr_from_dict({"t": "cmp", "op": "<"})

    def test_missing_root(self):
        with pytest.raises(PlanError, match="root"):
            plan_from_dict({"name": "x"})

    def test_fingerprint_mismatch_rejected(self):
        wire = plan_to_wire(logical_plan("Q6"))
        wire["fingerprint"] = "ir:0000000000000000"
        with pytest.raises(PlanError, match="does not match"):
            plan_from_wire(wire)

    def test_malformed_payload_wrapped_as_plan_error(self):
        with pytest.raises(PlanError, match="malformed"):
            plan_from_dict(
                {
                    "name": "x",
                    "root": {
                        "t": "project",
                        "child": {"t": "scan", "table": "R"},
                        "outputs": [["only-name"]],
                    },
                }
            )

    def test_unserialisable_expression(self):
        from repro.plan.expressions import Expr

        class Weird(Expr):
            pass

        with pytest.raises(PlanError, match="cannot serialise"):
            expr_to_dict(Weird())


class TestAggregates:
    def test_count_without_expression(self):
        plan = LogicalPlan(
            name="counts",
            root=logical_plan("Q1").root,
        )
        payload = plan_to_dict(plan)
        assert plan_from_dict(payload) == plan

    def test_agg_spec_fields_preserved(self):
        from repro.plan.serde import _agg_from_dict, _agg_to_dict

        agg = AggSpec("sum", Col("x") * Const(2), name="revenue")
        assert _agg_from_dict(_agg_to_dict(agg)) == agg
        count = AggSpec("count", None, name="n")
        assert _agg_from_dict(_agg_to_dict(count)) == count
