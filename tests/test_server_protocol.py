"""Wire protocol: request/response round trips and spec parsing."""

import numpy as np
import pytest

from repro.datagen import microbench as mb
from repro.plan.logical import Query
from repro.server import (
    ERR_DEADLINE,
    ERR_QUEUE_FULL,
    ERR_SHUTTING_DOWN,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    parse_query_spec,
)
from repro.server.protocol import (
    STATUS_ERROR,
    STATUS_OK,
    ErrorInfo,
    dump_line,
    encode_value,
    load_line,
)


class TestQuerySpec:
    def test_tpch_names_pass_through(self):
        assert parse_query_spec("Q1") == "Q1"
        assert parse_query_spec("Q6") == "Q6"

    def test_micro_spec_builds_the_query(self):
        spec = {"micro": "q1", "args": {"sel": 30, "op": "mul"}}
        built = parse_query_spec(spec)
        assert isinstance(built, Query)
        assert built == mb.q1(30, "mul")

    def test_micro_spec_defaults_args(self):
        assert parse_query_spec({"micro": "q2", "args": {"sel": 40}}) == (
            mb.q2(40)
        )

    def test_logical_query_passes_through(self):
        query = mb.q1(50)
        assert parse_query_spec(query) is query

    def test_unknown_micro_name(self):
        with pytest.raises(ProtocolError, match=r"unknown microbenchmark"):
            parse_query_spec({"micro": "q99"})

    def test_dict_without_micro_key(self):
        with pytest.raises(ProtocolError, match=r"'micro'"):
            parse_query_spec({"sql": "select 1"})

    def test_bad_micro_args(self):
        with pytest.raises(ProtocolError, match=r"bad arguments"):
            parse_query_spec({"micro": "q1", "args": {"nope": 1}})
        with pytest.raises(ProtocolError, match=r"must be an object"):
            parse_query_spec({"micro": "q1", "args": [30]})

    def test_unsupported_spec_type(self):
        with pytest.raises(ProtocolError, match=r"unsupported"):
            parse_query_spec(42)


class TestPlanSpecs:
    """Logical plans over the wire: structural JSON + IR fingerprint."""

    def _plan(self):
        from repro.tpch import logical_plan

        return logical_plan("Q6")

    def test_logical_plan_passes_through(self):
        plan = self._plan()
        assert parse_query_spec(plan) is plan

    def test_plan_envelope_decodes(self):
        from repro.plan.serde import plan_to_wire

        plan = self._plan()
        wire = load_line(dump_line(plan_to_wire(plan)))
        assert parse_query_spec(wire) == plan

    def test_plan_request_round_trips(self):
        from repro.server.protocol import parse_request

        plan = self._plan()
        request = QueryRequest(query=plan, strategy="swole", workers=2)
        back = parse_request(load_line(dump_line(request.to_wire())))
        assert back.strategy == "swole"
        assert back.workers == 2
        assert parse_query_spec(back.query) == plan

    def test_tampered_fingerprint_rejected(self):
        from repro.plan.serde import plan_to_wire

        wire = plan_to_wire(self._plan())
        wire["fingerprint"] = "ir:0000000000000000"
        with pytest.raises(ProtocolError, match=r"does not match"):
            parse_query_spec(wire)

    def test_bad_plan_payload_rejected(self):
        with pytest.raises(ProtocolError, match=r"unknown plan node"):
            parse_query_spec({"plan": {"name": "x", "root": {"t": "cube"}}})


class TestRequestWire:
    def test_round_trip_defaults(self):
        request = QueryRequest(query="Q1")
        wire = request.to_wire()
        assert wire == {"id": request.id, "query": "Q1"}
        back = QueryRequest.from_wire(wire)
        assert back == request

    def test_round_trip_full(self):
        request = QueryRequest(
            query={"micro": "q1", "args": {"sel": 30}},
            strategy="swole",
            workers=4,
            deadline=1.5,
            id="req-7",
        )
        back = QueryRequest.from_wire(request.to_wire())
        assert back == request

    def test_auto_generated_ids_are_unique(self):
        assert QueryRequest(query="Q1").id != QueryRequest(query="Q1").id

    def test_logical_query_does_not_serialise(self):
        with pytest.raises(ProtocolError, match=r"in-process only"):
            QueryRequest(query=mb.q1(30)).to_wire()

    @pytest.mark.parametrize(
        "wire",
        [
            "not a dict",
            {},
            {"query": "Q1", "workers": 0},
            {"query": "Q1", "workers": "four"},
            {"query": "Q1", "deadline": 0},
            {"query": "Q1", "deadline": -1.0},
            {"query": "Q1", "strategy": 3},
        ],
    )
    def test_from_wire_rejects_bad_requests(self, wire):
        with pytest.raises(ProtocolError):
            QueryRequest.from_wire(wire)


class TestResponseWire:
    def test_ok_round_trip(self):
        response = QueryResponse(
            id="r1",
            status=STATUS_OK,
            value={"sum": 12.5},
            metrics={"queue_wait_seconds": 0.01},
        )
        back = QueryResponse.from_wire(load_line(dump_line(response.to_wire())))
        assert back.ok
        assert back.value == {"sum": 12.5}
        assert back.metrics["queue_wait_seconds"] == 0.01
        assert back.error is None

    def test_error_round_trip_with_retry_after(self):
        response = QueryResponse(
            id="r2",
            status=STATUS_ERROR,
            error=ErrorInfo(
                code=ERR_QUEUE_FULL, message="full", retry_after=0.25
            ),
        )
        back = QueryResponse.from_wire(load_line(dump_line(response.to_wire())))
        assert not back.ok
        assert back.error_code == ERR_QUEUE_FULL
        assert back.error.retry_after == 0.25
        assert back.shed

    def test_classification_properties(self):
        def err(code):
            return QueryResponse(
                id="x",
                status=STATUS_ERROR,
                error=ErrorInfo(code=code, message=""),
            )

        assert err(ERR_QUEUE_FULL).shed
        assert err(ERR_SHUTTING_DOWN).shed
        assert err(ERR_DEADLINE).timed_out
        assert not err(ERR_DEADLINE).shed

    def test_load_line_rejects_bad_json(self):
        with pytest.raises(ProtocolError, match=r"malformed"):
            load_line(b"{not json\n")


class TestEncodeValue:
    def test_numpy_scalars_and_arrays(self):
        assert encode_value(np.int64(7)) == 7
        assert encode_value(np.float32(1.5)) == 1.5
        assert encode_value(np.array([1, 2])) == [1, 2]

    def test_nested_containers(self):
        value = {"sums": (np.int32(3), [np.float64(0.5)])}
        assert encode_value(value) == {"sums": [3, [0.5]]}

    def test_encoded_values_are_json_safe(self):
        import json

        value = {"a": np.arange(3), "b": np.float64(2.0)}
        json.dumps(encode_value(value))  # must not raise
