"""Tests for the trace-driven cache simulator (repro.engine.cache)."""

import numpy as np
import pytest

from repro.engine.cache import (
    CacheHierarchy,
    SetAssociativeCache,
    conditional_trace,
    random_trace,
    sequential_trace,
)
from repro.errors import CostModelError


def _cache(capacity=1024, line=64, ways=2):
    return SetAssociativeCache(capacity, line_bytes=line, ways=ways)


class TestSetAssociativeCache:
    def test_geometry_validated(self):
        with pytest.raises(CostModelError):
            SetAssociativeCache(0)
        with pytest.raises(CostModelError):
            SetAssociativeCache(100, line_bytes=64, ways=3)

    def test_cold_miss_then_hit(self):
        cache = _cache()
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(63) is True  # same line
        assert cache.access(64) is False  # next line

    def test_lru_eviction_within_set(self):
        # two-way set: third distinct line mapping to the set evicts LRU
        cache = _cache(capacity=256, line=64, ways=2)  # 2 sets
        set_stride = 2 * 64  # same set every 2 lines
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a
        assert cache.access(b) is True
        assert cache.access(a) is False

    def test_lru_updated_on_hit(self):
        cache = _cache(capacity=256, line=64, ways=2)
        set_stride = 2 * 64
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a; b becomes LRU
        cache.access(c)  # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_sequential_trace_miss_rate(self):
        cache = _cache(capacity=4096)
        trace = sequential_trace(0, 1024, width=4)  # 4KB = 64 lines
        stats = cache.run_trace(trace)
        assert stats.misses == 64
        assert stats.miss_rate == pytest.approx(64 / 1024)

    def test_working_set_larger_than_cache_thrashes(self):
        cache = _cache(capacity=1024)
        # cycle through 4KB repeatedly: every access misses (LRU + loop)
        trace = np.tile(sequential_trace(0, 64, width=64), 4)
        stats = cache.run_trace(trace)
        assert stats.miss_rate == 1.0

    def test_working_set_fitting_cache_hits_after_warmup(self):
        cache = _cache(capacity=8192, ways=8)
        trace = np.tile(sequential_trace(0, 64, width=64), 4)
        stats = cache.run_trace(trace)
        assert stats.misses == 64  # cold misses only

    def test_reset_stats(self):
        cache = _cache()
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0


class TestTraceBuilders:
    def test_conditional_trace_selects_rows(self):
        selected = np.asarray([True, False, True])
        trace = conditional_trace(100, 3, 8, selected)
        assert trace.tolist() == [100, 116]

    def test_random_trace_in_bounds(self, rng):
        trace = random_trace(0, 1024, 100, 8, rng)
        assert trace.min() >= 0
        assert trace.max() < 1024

    def test_random_trace_bad_struct(self, rng):
        with pytest.raises(CostModelError):
            random_trace(0, 4, 10, 8, rng)


class TestHierarchy:
    def test_latency_per_level(self):
        l1 = _cache(capacity=256, ways=2)
        l2 = _cache(capacity=1024, ways=2)
        hier = CacheHierarchy([l1, l2], [4.0, 12.0], mem_latency=100.0)
        assert hier.access(0) == 100.0  # cold
        assert hier.access(0) == 4.0  # now in L1

    def test_mismatched_latencies_rejected(self):
        with pytest.raises(CostModelError):
            CacheHierarchy([_cache()], [1.0, 2.0], 100.0)

    def test_expected_latency_between_l1_and_memory(self, rng):
        l1 = _cache(capacity=512, ways=2)
        hier = CacheHierarchy([l1], [4.0], mem_latency=100.0)
        hier.run_trace(random_trace(0, 64 * 1024, 2000, 8, rng))
        assert 4.0 <= hier.expected_latency() <= 100.0

    def test_small_structure_mostly_hits(self, rng):
        l1 = _cache(capacity=4096, ways=4)
        hier = CacheHierarchy([l1], [4.0], mem_latency=100.0)
        hier.run_trace(random_trace(0, 1024, 5000, 8, rng))
        assert hier.expected_latency() < 10.0
