"""Selectivity explorer: sweep any microbenchmark figure from the CLI.

Interactively reproduces the paper's microbenchmark curves — pick a
figure and watch where the strategies cross over and what the SWOLE
planner decides at each point. Pass ``--workers N`` to run the
partitionable scans morsel-parallel (the reported seconds become the
simulated critical path) and ``--plan-cache cold`` to recompile at
every sweep point instead of reusing the engine's plan cache.

Run:  python examples/selectivity_explorer.py fig8 mul
      python examples/selectivity_explorer.py fig9 100000
      python examples/selectivity_explorer.py fig11 probe 90
      python examples/selectivity_explorer.py fig12 1000000 --workers 4
"""

import sys

from repro.bench import microbench as sweep
from repro.datagen import microbench as mb

CONFIG = mb.MicrobenchConfig(num_rows=1_000_000, s_rows=10_000)


def main() -> None:
    args = sys.argv[1:]
    workers = 1
    plan_cache = "warm"
    if "--workers" in args:
        at = args.index("--workers")
        workers = int(args[at + 1])
        del args[at : at + 2]
    if "--plan-cache" in args:
        at = args.index("--plan-cache")
        plan_cache = args[at + 1]
        del args[at : at + 2]
    par = dict(workers=workers, plan_cache=plan_cache)

    figure = args[0] if args else "fig8"
    if figure == "fig8":
        op = args[1] if len(args) > 1 else "mul"
        result = sweep.fig8(op, config=CONFIG, **par)
    elif figure == "fig9":
        cardinality = int(args[1]) if len(args) > 1 else 100_000
        result = sweep.fig9(cardinality, config=CONFIG, **par)
    elif figure == "fig10":
        col = args[1] if len(args) > 1 else "r_x"
        result = sweep.fig10(col, config=CONFIG, **par)
    elif figure == "fig11":
        side = args[1] if len(args) > 1 else "probe"
        fixed = int(args[2]) if len(args) > 2 else 90
        result = sweep.fig11(side, fixed, config=CONFIG, **par)
    elif figure == "fig12":
        s_rows = int(args[1]) if len(args) > 1 else mb.PAPER_S_LARGE
        result = sweep.fig12(s_rows, config=CONFIG, **par)
    else:
        raise SystemExit(f"unknown figure {figure!r} (fig8..fig12)")

    print(result.format_table())
    print()
    crossover = result.crossover("swole", "hybrid")
    if crossover is None:
        print("SWOLE never overtakes hybrid in this configuration")
    else:
        print(f"SWOLE overtakes hybrid at {crossover}% selectivity")


if __name__ == "__main__":
    main()
