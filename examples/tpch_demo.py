"""TPC-H demo: regenerate the paper's Figure 6 at a chosen scale.

Generates TPC-H data, runs the paper's eight queries under every
strategy, prints the Figure 6 table (with the paper's reported SWOLE
speedups alongside), and then zooms into Q4 — the paper's biggest win —
showing where each strategy's cycles go.

Run:  python examples/tpch_demo.py [scale_factor]
"""

import sys

from repro.bench.tpch import run_fig6
from repro.datagen import tpch as tpchgen
from repro.engine.machine import PAPER_MACHINE
from repro.engine.session import Session
from repro.tpch import compile_tpch


def main() -> None:
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    config = tpchgen.TpchConfig(scale_factor=sf)
    print(f"generating TPC-H SF {sf} ...")
    db = tpchgen.generate(config)
    for name in db.catalog.table_names:
        print(f"  {name:<10s} {db.table(name).num_rows:>10,d} rows")
    print()

    report = run_fig6(config, db=db)
    print(report.format_table())
    print()

    print("Q4 anatomy (hash semijoin vs positional bitmap):")
    session = Session(machine=PAPER_MACHINE.scaled(config.machine_scale))
    for strategy in ("hybrid", "swole"):
        result = compile_tpch("Q4", strategy, db).run(session)
        print(f"--- {strategy}")
        print(result.report.breakdown())
    print()
    print("(the bitmap build replaces the giant hash-table insert phase)")


if __name__ == "__main__":
    main()
