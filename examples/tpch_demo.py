"""TPC-H demo: regenerate the paper's Figure 6 at a chosen scale.

Generates TPC-H data, runs the paper's eight queries under every
strategy, prints the Figure 6 table (with the paper's reported SWOLE
speedups alongside), and then zooms into Q4 — the paper's biggest win —
showing where each strategy's cycles go. Everything runs through one
:class:`repro.Engine`, so the eight queries compile once into its plan
cache and the single-table scans (Q1, Q6) can run morsel-parallel.

Run:  python examples/tpch_demo.py [scale_factor] [workers]
"""

import sys

from repro import Engine
from repro.bench.tpch import run_fig6
from repro.datagen import tpch as tpchgen
from repro.engine.machine import PAPER_MACHINE


def main() -> None:
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    config = tpchgen.TpchConfig(scale_factor=sf)
    print(f"generating TPC-H SF {sf} ...")
    db = tpchgen.generate(config)
    for name in db.catalog.table_names:
        print(f"  {name:<10s} {db.table(name).num_rows:>10,d} rows")
    print()

    report = run_fig6(config, db=db, workers=workers)
    print(report.format_table())
    print()

    print("Q4 anatomy (hash semijoin vs positional bitmap):")
    engine = Engine(db, machine=PAPER_MACHINE.scaled(config.machine_scale))
    for strategy in ("hybrid", "swole"):
        result = engine.execute("Q4", strategy)
        print(f"--- {strategy}")
        print(result.report.breakdown())
    print()
    print("(the bitmap build replaces the giant hash-table insert phase)")


if __name__ == "__main__":
    main()
