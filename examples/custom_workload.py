"""Custom workload: bring your own table and let SWOLE plan it.

Shows the public API end to end on data that is *not* one of the bundled
generators: build a Database from NumPy arrays, express the query as an
operator tree with the fluent :class:`repro.PlanBuilder`, inspect the
staged lowering (logical plan, strategy passes with their cost-model
estimates, physical plan) via ``Engine.explain``, and run the chosen
plan. The dictionary-encoded ``source = 'ads'`` literal stays symbolic
in the plan — the binding pass resolves it to its dictionary code at
compile time.

The scenario: a web-analytics events table where a marketing query sums
session revenue for one traffic source, grouped by country.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import AggSpec, Col, Engine, PlanBuilder
from repro.bench.microbench import scaled_machine
from repro.datagen.microbench import MicrobenchConfig
from repro.plan.expressions import DictEq
from repro.storage.column import Column, LogicalType, string_column
from repro.storage.database import Database
from repro.storage.table import Table


def build_events(n: int = 1_000_000, seed: int = 3) -> Database:
    rng = np.random.default_rng(seed)
    sources = rng.choice(
        ["ads", "email", "organic", "referral", "social"], size=n
    )
    events = Table(
        name="events",
        columns=(
            string_column("source", sources),
            Column("country", LogicalType.INT16, rng.integers(0, 200, n)),
            Column("revenue_cents", LogicalType.INT32,
                   rng.integers(0, 5_000, n)),
            Column("pages", LogicalType.INT8, rng.integers(1, 40, n)),
        ),
    )
    db = Database()
    db.add_table(events)
    return db


def main() -> None:
    db = build_events()

    plan = (
        PlanBuilder.scan("events")
        .filter(DictEq("source", "ads"), Col("pages") > 3)
        .group_agg(
            AggSpec("sum", Col("revenue_cents"), name="revenue"),
            AggSpec("count", name="sessions"),
            key="country",
        )
        .build("ads-revenue-by-country")
    )

    # caches scaled as if this were a 100M-row production table
    machine = scaled_machine(MicrobenchConfig(num_rows=1_000_000))
    engine = Engine(db, machine=machine, workers=4)

    # the staged lowering: logical plan, passes (with the cost-model
    # estimates behind every applied/declined technique), physical plan
    print(engine.explain(plan))
    print()

    # Instrumented backend: the simulated-runtime comparison below is
    # priced by the cost model (the vectorized serving default, which
    # answers identically, prices nothing).
    result = engine.execute(plan, backend="instrumented")
    hybrid = engine.execute(plan, "hybrid", backend="instrumented")
    served = engine.execute(plan)  # the vectorized serving default
    assert np.array_equal(result.value["keys"], served.value["keys"])
    assert np.array_equal(result.value["aggs"], served.value["aggs"])
    assert np.array_equal(result.value["keys"], hybrid.value["keys"])
    assert np.array_equal(result.value["aggs"], hybrid.value["aggs"])

    top = np.argsort(result.value["aggs"][:, 0])[-5:][::-1]
    print("top countries by ad revenue (revenue cents, sessions):")
    for i in top:
        key = result.value["keys"][i]
        revenue, sessions = result.value["aggs"][i]
        print(f"  country {key:>3d}: {revenue:>12,d} {sessions:>9,d}")
    print()
    print(
        f"simulated runtime: swole {result.seconds:.4f}s vs "
        f"hybrid {hybrid.seconds:.4f}s "
        f"({hybrid.seconds / result.seconds:.2f}x)"
    )
    print(
        f"parallel: {result.metrics.workers} workers, "
        f"{result.metrics.morsels} morsels, "
        f"{result.metrics.speedup:.2f}x simulated critical-path speedup"
    )


if __name__ == "__main__":
    main()
