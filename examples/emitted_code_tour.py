"""Emitted-code tour: the generated C for every strategy (paper Figs 1/3/4/5).

Prints the C-like source each code-generation strategy emits for the
paper's running examples — the simple aggregation, the group-by (value
vs key masking), the repeated-reference query (access merging), the
semijoin (positional bitmap), and the groupjoin (eager aggregation).

Run:  python examples/emitted_code_tour.py
"""

from repro import Engine
from repro.core import planner as P
from repro.core.swole import compile_swole
from repro.datagen import microbench as mb


def show(title: str, source: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(source)
    print()


def main() -> None:
    db = mb.generate(mb.MicrobenchConfig(num_rows=100_000, s_rows=1_000))
    engine = Engine(db)

    # Figure 1: the existing strategies on the running example
    query = mb.q1(13)
    for strategy in ("datacentric", "hybrid", "rof"):
        show(
            f"Fig 1 — {strategy} for {query.name}",
            engine.compile(query, strategy).source,
        )

    # Figure 3+: forced SWOLE techniques. Engine.compile always lets
    # the planner choose, so the force= research knob keeps using
    # repro.core.swole.compile_swole directly.
    show(
        "Fig 3 — SWOLE value masking",
        compile_swole(query, db, force=P.VALUE_MASKING).source,
    )

    # Figure 4: group-by, value masking vs key masking
    grouped = mb.q2(13)
    show(
        "Fig 4 (top) — value-masked group-by",
        compile_swole(grouped, db, force=P.VALUE_MASKING).source,
    )
    show(
        "Fig 4 (bottom) — key-masked group-by",
        compile_swole(grouped, db, force=P.KEY_MASKING).source,
    )

    # Figure 5: access merging
    merged = mb.q3(13, "r_x")
    show(
        "Fig 5 — access merging (r_x referenced twice)",
        compile_swole(merged, db, force=P.VALUE_MASKING).source,
    )

    # §III-D: positional bitmap semijoin (planner's own pick -> Engine)
    semijoin = mb.q4(50, 50)
    show("§III-D — positional bitmap semijoin",
         engine.compile(semijoin).source)

    # §III-E: eager aggregation (force by picking a favourable config)
    groupjoin = mb.q5(80)
    compiled = engine.compile(groupjoin)
    show(
        f"§III-E — groupjoin plan ({compiled.notes['plan']})",
        compiled.source,
    )


if __name__ == "__main__":
    main()
