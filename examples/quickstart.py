"""Quickstart: compile one query under every strategy and compare.

Generates the paper's microbenchmark table R, compiles
``select sum(r_a * r_b) from R where r_x < 13 and r_y = 1`` with the
data-centric, hybrid, ROF, and SWOLE strategies, runs each, and prints
the answer (identical by construction), simulated runtime, and the
SWOLE planner's technique choice.

Run:  python examples/quickstart.py
"""

import repro.core.swole  # noqa: F401  (registers the "swole" strategy)
from repro.bench.microbench import scaled_machine
from repro.codegen import compile_query
from repro.core.swole import compile_swole
from repro.datagen import microbench as mb
from repro.engine.session import Session


def main() -> None:
    config = mb.MicrobenchConfig(num_rows=500_000, s_rows=5_000)
    db = mb.generate(config)
    machine = scaled_machine(config)  # caches shrink with the data
    session = Session(machine=machine)

    query = mb.q1(13)  # select sum(r_a * r_b) from R where r_x < 13 ...
    print(f"query: {query.name}   |R| = {config.num_rows:,}")
    print()

    results = {}
    for strategy in ("interpreter", "datacentric", "hybrid", "rof"):
        compiled = compile_query(query, db, strategy)
        results[strategy] = compiled.run(session)

    swole = compile_swole(query, db, machine=machine)
    results["swole"] = swole.run(session)
    print(f"SWOLE plan: {swole.notes['plan']}")
    print()

    answer = results["swole"].scalar("sum")
    print(f"{'strategy':>12s} {'answer':>16s} {'simulated':>12s} {'vs hybrid':>10s}")
    hybrid_seconds = results["hybrid"].seconds
    for strategy, result in results.items():
        assert result.scalar("sum") == answer, "strategies disagree!"
        speedup = hybrid_seconds / result.seconds
        print(
            f"{strategy:>12s} {result.scalar('sum'):>16,d} "
            f"{result.seconds:>10.4f}s {speedup:>9.2f}x"
        )

    print()
    print("cost breakdown of the SWOLE program:")
    print(results["swole"].report.breakdown())


if __name__ == "__main__":
    main()
