"""Quickstart: one Engine, every strategy, identical answers.

Generates the paper's microbenchmark table R, builds
``select sum(r_a * r_b) from R where r_x < 13 and r_y = 1`` as an
operator tree with the fluent :class:`repro.PlanBuilder` (the front-door
query API), executes it under the interpreter, data-centric, hybrid, and
SWOLE strategies, and prints the answer (identical by construction),
simulated runtime, and the SWOLE planner's technique choice. The ROF
strategy predates the pass framework, so its row runs the same query
through the legacy microbench spec. The table runs on the instrumented
backend (the costing authority); a second pass shows the vectorized
serving backend (the engine default) — same bits, real wall-clock
speed, plan cache hit.

Run:  python examples/quickstart.py
"""

from repro import AggSpec, Col, Engine, PlanBuilder
from repro.bench.microbench import scaled_machine
from repro.datagen import microbench as mb


def main() -> None:
    config = mb.MicrobenchConfig(num_rows=500_000, s_rows=5_000)
    db = mb.generate(config)
    machine = scaled_machine(config)  # caches shrink with the data
    engine = Engine(db, machine=machine, workers=4)

    # select sum(r_a * r_b) from R where r_x < 13 and r_y = 1
    plan = (
        PlanBuilder.scan("R")
        .filter(Col("r_x") < 13, Col("r_y").eq(1))
        .group_agg(AggSpec("sum", Col("r_a") * Col("r_b"), name="sum"))
        .build("uQ1[mul,13]")
    )
    print(f"query: {plan.name}   |R| = {config.num_rows:,}")
    print()

    # The simulated-seconds table needs the instrumented backend (the
    # costing authority); the vectorized serving default prices nothing.
    results = {
        strategy: engine.execute(
            plan, strategy, workers=1, backend="instrumented"
        )
        for strategy in ("interpreter", "datacentric", "hybrid", "swole")
    }
    # ROF predates the operator-tree pass framework; the legacy
    # microbench Query spelling still drives it.
    results["rof"] = engine.execute(
        mb.q1(13), "rof", workers=1, backend="instrumented"
    )
    swole = engine.compile(plan)  # "auto" resolves to SWOLE; cached
    print(f"SWOLE plan: {swole.notes['plan']}")
    print()

    answer = results["swole"].scalar("sum")
    print(f"{'strategy':>12s} {'answer':>16s} {'simulated':>12s} {'vs hybrid':>10s}")
    hybrid_seconds = results["hybrid"].seconds
    for strategy, result in results.items():
        assert result.scalar("sum") == answer, "strategies disagree!"
        speedup = hybrid_seconds / result.seconds
        print(
            f"{strategy:>12s} {result.scalar('sum'):>16,d} "
            f"{result.seconds:>10.4f}s {speedup:>9.2f}x"
        )

    print()
    # Engine defaults: the vectorized backend (generated whole-column
    # NumPy kernels — same bits, real wall-clock speed), 4 workers.
    parallel = engine.execute(plan)
    assert parallel.scalar("sum") == answer, "parallel run diverged!"
    print("same query on the vectorized serving backend (engine default):")
    print(parallel.metrics.describe())
    print(
        f"wall: {parallel.metrics.wall_seconds * 1e3:.1f} ms vectorized "
        f"vs {results['swole'].metrics.wall_seconds * 1e3:.1f} ms "
        f"instrumented"
    )
    print()
    print("cost breakdown of the SWOLE program:")
    print(results["swole"].report.breakdown())


if __name__ == "__main__":
    main()
