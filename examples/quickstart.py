"""Quickstart: one Engine, every strategy, identical answers.

Generates the paper's microbenchmark table R, binds it to a
:class:`repro.Engine`, executes
``select sum(r_a * r_b) from R where r_x < 13 and r_y = 1`` under the
data-centric, hybrid, ROF, and SWOLE strategies, and prints the answer
(identical by construction), simulated runtime, and the SWOLE planner's
technique choice. A second pass at 4 workers shows the morsel executor:
same bits, simulated critical path ~4x shorter, plan cache hit.

Run:  python examples/quickstart.py
"""

from repro import Engine
from repro.bench.microbench import scaled_machine
from repro.datagen import microbench as mb


def main() -> None:
    config = mb.MicrobenchConfig(num_rows=500_000, s_rows=5_000)
    db = mb.generate(config)
    machine = scaled_machine(config)  # caches shrink with the data
    engine = Engine(db, machine=machine, workers=4)

    query = mb.q1(13)  # select sum(r_a * r_b) from R where r_x < 13 ...
    print(f"query: {query.name}   |R| = {config.num_rows:,}")
    print()

    results = {
        strategy: engine.execute(query, strategy, workers=1)
        for strategy in ("interpreter", "datacentric", "hybrid", "rof", "swole")
    }
    swole = engine.compile(query)  # "auto" resolves to SWOLE; cached
    print(f"SWOLE plan: {swole.notes['plan']}")
    print()

    answer = results["swole"].scalar("sum")
    print(f"{'strategy':>12s} {'answer':>16s} {'simulated':>12s} {'vs hybrid':>10s}")
    hybrid_seconds = results["hybrid"].seconds
    for strategy, result in results.items():
        assert result.scalar("sum") == answer, "strategies disagree!"
        speedup = hybrid_seconds / result.seconds
        print(
            f"{strategy:>12s} {result.scalar('sum'):>16,d} "
            f"{result.seconds:>10.4f}s {speedup:>9.2f}x"
        )

    print()
    parallel = engine.execute(query)  # engine default: 4 workers
    assert parallel.scalar("sum") == answer, "parallel run diverged!"
    print("same query through the morsel executor (engine default):")
    print(parallel.metrics.describe())
    print()
    print("cost breakdown of the SWOLE program:")
    print(results["swole"].report.breakdown())


if __name__ == "__main__":
    main()
